// Tests for the support utilities: contracts, RNG, byte streams, tables.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "support/bytes.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace pup {
namespace {

TEST(Check, RequireThrowsWithMessage) {
  try {
    PUP_REQUIRE(1 == 2, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("value was 42"), std::string::npos);
  }
}

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(PUP_REQUIRE(true, "never"));
  EXPECT_NO_THROW(PUP_CHECK(2 + 2 == 4, "math"));
}

TEST(Rng, SplitMix64KnownValues) {
  // Reference values from the public-domain SplitMix64 with seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
}

TEST(Rng, XoshiroIsDeterministicPerSeed) {
  Xoshiro256 a(7), b(7), c(8);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Bytes, WriteReadRoundTrip) {
  ByteWriter w;
  w.put<std::int64_t>(-5);
  w.put<double>(2.5);
  std::vector<int> vals = {1, 2, 3};
  w.put_span<int>(vals);
  EXPECT_EQ(w.size(), 8 + 8 + 12u);

  auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.get<std::int64_t>(), -5);
  EXPECT_EQ(r.get<double>(), 2.5);
  std::vector<int> out(3);
  r.get_into<int>(out);
  EXPECT_EQ(out, vals);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, UnderflowThrows) {
  ByteWriter w;
  w.put<std::int32_t>(1);
  auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(r.get<std::int64_t>(), ContractError);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t("demo");
  t.header({"a", "long-name", "c"});
  t.row({"1", "2", "3"});
  t.row({"10", "20", "30"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("## demo"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("30"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable t("demo");
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only-one"}), ContractError);
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(static_cast<long long>(42)), "42");
}

}  // namespace
}  // namespace pup
