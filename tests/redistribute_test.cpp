// Tests for the generic block-cyclic redistribution library.
#include <gtest/gtest.h>

#include <numeric>

#include "dist/redistribute.hpp"
#include "sim/machine.hpp"

namespace pup::dist {
namespace {

sim::Machine make_machine(int p) {
  return sim::Machine(p, sim::CostModel{10.0, 0.1, 0.01});
}

struct Case {
  std::vector<index_t> extents;
  std::vector<int> procs;
  std::vector<index_t> src_blocks;
  std::vector<index_t> dst_blocks;
};

class RedistributeSweep
    : public ::testing::TestWithParam<std::tuple<Case, RedistMode>> {};

TEST_P(RedistributeSweep, PreservesGlobalContents) {
  const auto& [c, mode] = GetParam();
  int p = 1;
  for (int x : c.procs) p *= x;
  sim::Machine machine = make_machine(p);
  Shape shape(c.extents);
  ProcessGrid grid(c.procs);
  auto src_dist = Distribution(shape, grid, c.src_blocks);
  auto dst_dist = Distribution(shape, grid, c.dst_blocks);

  std::vector<int> data(static_cast<std::size_t>(shape.size()));
  std::iota(data.begin(), data.end(), 0);
  auto src = DistArray<int>::scatter(src_dist, data);
  DistArray<int> dst(dst_dist);
  redistribute(machine, src, dst, mode);
  EXPECT_EQ(dst.gather(), data);
  EXPECT_TRUE(machine.mailboxes_empty());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RedistributeSweep,
    ::testing::Combine(
        ::testing::Values(
            Case{{32}, {4}, {1}, {8}},   // cyclic -> block (the Red path)
            Case{{32}, {4}, {8}, {1}},   // block -> cyclic
            Case{{32}, {4}, {2}, {4}},   // block-cyclic -> block-cyclic
            Case{{32}, {4}, {4}, {4}},   // identity layout
            Case{{60}, {5}, {1}, {12}},  // non-pow2 P
            Case{{8, 8}, {2, 2}, {1, 1}, {4, 4}},
            Case{{16, 8}, {4, 2}, {2, 1}, {4, 4}},
            Case{{12, 6}, {3, 2}, {1, 3}, {4, 1}}),
        ::testing::Values(RedistMode::kWithIndices,
                          RedistMode::kDetectBothSides)));

TEST(Redistribute, IdentityLayoutMovesNothingOffProcessor) {
  sim::Machine machine = make_machine(4);
  auto d = Distribution::block_cyclic(Shape({32}), ProcessGrid({4}), 2);
  std::vector<int> data(32, 3);
  auto src = DistArray<int>::scatter(d, data);
  DistArray<int> dst(d);
  redistribute(machine, src, dst, RedistMode::kDetectBothSides);
  EXPECT_EQ(machine.trace().messages(), 0);
  EXPECT_EQ(dst.gather(), data);
}

TEST(Redistribute, WithIndicesDoublesPayload) {
  // kWithIndices ships an int64 index per int64 value -> 2x the bytes of
  // kDetectBothSides.
  auto run = [&](RedistMode mode) {
    sim::Machine machine = make_machine(4);
    Shape shape({32});
    auto src_dist = Distribution::cyclic(shape, ProcessGrid({4}));
    auto dst_dist = Distribution::block(shape, ProcessGrid({4}));
    std::vector<std::int64_t> data(32, 1);
    auto src = DistArray<std::int64_t>::scatter(src_dist, data);
    DistArray<std::int64_t> dst(dst_dist);
    redistribute(machine, src, dst, mode);
    return machine.trace().bytes();
  };
  EXPECT_EQ(run(RedistMode::kWithIndices), 2 * run(RedistMode::kDetectBothSides));
}

TEST(Redistribute, ChargesRedistCategory) {
  sim::Machine machine = make_machine(2);
  Shape shape({8});
  auto src = DistArray<int>::scatter(
      Distribution::cyclic(shape, ProcessGrid({2})), std::vector<int>(8, 1));
  DistArray<int> dst(Distribution::block(shape, ProcessGrid({2})));
  redistribute(machine, src, dst);
  EXPECT_GT(machine.max_us(sim::Category::kRedist), 0.0);
  EXPECT_DOUBLE_EQ(machine.max_us(sim::Category::kM2M), 0.0);
}

TEST(Redistribute, ShapeMismatchThrows) {
  sim::Machine machine = make_machine(2);
  DistArray<int> a(Distribution::block1d(8, 2));
  DistArray<int> b(Distribution::block1d(9, 2));
  EXPECT_THROW(redistribute(machine, a, b), pup::ContractError);
}

}  // namespace
}  // namespace pup::dist
