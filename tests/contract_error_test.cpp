// Contract-macro and ContractError-path coverage: message formatting,
// transport preconditions, accounting invariants, and the Trace bounds
// checks.
#include <gtest/gtest.h>

#include <string>

#include "sim/machine.hpp"
#include "sim/trace.hpp"
#include "support/check.hpp"

namespace pup {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(ContractError, RequireFormatsExpressionFileAndStreamedMessage) {
  try {
    const int got = 42;
    PUP_REQUIRE(got < 10, "got " << got << " elements");
    FAIL() << "PUP_REQUIRE did not throw";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_TRUE(contains(what, "precondition failed")) << what;
    EXPECT_TRUE(contains(what, "(got < 10)")) << what;
    EXPECT_TRUE(contains(what, "contract_error_test.cpp")) << what;
    EXPECT_TRUE(contains(what, "got 42 elements")) << what;
  }
}

TEST(ContractError, CheckFormatsAsInvariant) {
  try {
    PUP_CHECK(false, "state " << 'x');
    FAIL() << "PUP_CHECK did not throw";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_TRUE(contains(what, "invariant failed")) << what;
    EXPECT_TRUE(contains(what, "state x")) << what;
  }
}

TEST(ContractError, DcheckFollowsBuildType) {
#ifdef NDEBUG
  EXPECT_NO_THROW(PUP_DCHECK(false, "compiled out in NDEBUG builds"));
#else
  EXPECT_THROW(PUP_DCHECK(false, "active in debug builds"), ContractError);
#endif
}

TEST(ContractError, IsALogicError) {
  EXPECT_THROW(PUP_CHECK(false, ""), std::logic_error);
}

TEST(ContractError, ReceiveRequiredOnEmptyMailboxThrows) {
  sim::Machine machine(2, sim::CostModel{10.0, 0.05, 0.01});
  EXPECT_THROW((void)machine.receive_required(0), ContractError);
  EXPECT_THROW((void)machine.receive_required(1, 0, 7), ContractError);
  // The non-throwing probe stays silent on the same empty mailbox.
  EXPECT_FALSE(machine.receive(0).has_value());
  EXPECT_FALSE(machine.has_message(1, 0, 7));
}

TEST(ContractError, ResetAccountingWithQueuedMessageThrows) {
  sim::Machine machine(2, sim::CostModel{10.0, 0.05, 0.01});
  machine.post(sim::Message{0, 1, 3, std::vector<std::byte>(8)},
               sim::Category::kM2M);
  EXPECT_FALSE(machine.mailboxes_empty());
  EXPECT_THROW(machine.reset_accounting(), ContractError);

  // Draining the mailbox makes reset legal again.
  (void)machine.receive_required(1, 0, 3);
  EXPECT_TRUE(machine.mailboxes_empty());
  EXPECT_NO_THROW(machine.reset_accounting());
  EXPECT_EQ(machine.trace().messages(), 0);
}

TEST(ContractError, TraceRejectsOutOfRangeCategory) {
  sim::Trace trace(2);
  const auto bad = static_cast<sim::Category>(99);
  EXPECT_THROW(trace.record_message(0, 1, 16, bad), ContractError);
  EXPECT_THROW((void)trace.messages_in(bad), ContractError);
  EXPECT_THROW((void)trace.bytes_in(bad), ContractError);
  EXPECT_THROW((void)trace.messages_in(static_cast<sim::Category>(-1)),
               ContractError);
  // Nothing was recorded by the rejected calls.
  EXPECT_EQ(trace.messages(), 0);
  EXPECT_EQ(trace.bytes(), 0);
}

TEST(ContractError, TraceRejectsOutOfRangeRank) {
  sim::Trace trace(2);
  EXPECT_THROW(trace.record_message(-1, 0, 4, sim::Category::kM2M),
               ContractError);
  EXPECT_THROW(trace.record_message(0, 2, 4, sim::Category::kM2M),
               ContractError);
  EXPECT_THROW((void)trace.sent_bytes(2), ContractError);
  EXPECT_THROW((void)trace.recv_bytes(-1), ContractError);

  trace.record_message(0, 1, 4, sim::Category::kM2M);
  EXPECT_EQ(trace.messages(), 1);
  EXPECT_EQ(trace.sent_bytes(0), 4);
  EXPECT_EQ(trace.recv_bytes(1), 4);
}

}  // namespace
}  // namespace pup
