// White-box tests of PACK's internals: destination-run segmentation, the
// compact message scheme's wire format accounting, SSS record encoding,
// and the counter identities the Section 6.4 model defines.
#include <gtest/gtest.h>

#include <numeric>

#include "core/api.hpp"

namespace pup {
namespace {

using detail::for_each_dest_run;

TEST(DestRuns, SplitsExactlyAtBlockBoundaries) {
  dist::BlockCyclicDim vdim(100, 4, 25);  // block distribution: 25 each
  std::vector<std::tuple<int, std::int64_t, std::int64_t>> runs;
  for_each_dest_run(vdim, /*r0=*/20, /*n=*/40,
                    [&](int dest, std::int64_t base, std::int64_t len) {
                      runs.emplace_back(dest, base, len);
                    });
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], std::make_tuple(0, std::int64_t{20}, std::int64_t{5}));
  EXPECT_EQ(runs[1], std::make_tuple(1, std::int64_t{25}, std::int64_t{25}));
  EXPECT_EQ(runs[2], std::make_tuple(2, std::int64_t{50}, std::int64_t{10}));
}

TEST(DestRuns, SingleDestinationSingleRun) {
  dist::BlockCyclicDim vdim(64, 4, 16);
  int count = 0;
  for_each_dest_run(vdim, 17, 10, [&](int dest, std::int64_t, std::int64_t len) {
    EXPECT_EQ(dest, 1);
    EXPECT_EQ(len, 10);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(DestRuns, CyclicResultSplitsEverywhere) {
  dist::BlockCyclicDim vdim(16, 4, 1);  // cyclic: every rank its own block
  int count = 0;
  for_each_dest_run(vdim, 3, 6, [&](int dest, std::int64_t base, std::int64_t len) {
    EXPECT_EQ(len, 1);
    EXPECT_EQ(dest, static_cast<int>(base % 4));
    ++count;
  });
  EXPECT_EQ(count, 6);
}

TEST(DestRuns, LengthsSumToN) {
  dist::BlockCyclicDim vdim(1000, 7, 13);
  std::int64_t total = 0;
  for_each_dest_run(vdim, 123, 456,
                    [&](int, std::int64_t, std::int64_t len) { total += len; });
  EXPECT_EQ(total, 456);
}

TEST(WireFormat, CmsBytesMatchSegmentAccounting) {
  // CMS payload bytes == 8 * elements + 16 * segments (int64 header pair).
  sim::Machine machine(8, sim::CostModel{10, 0.1, 0.01});
  auto d = dist::Distribution::block_cyclic(dist::Shape({512}),
                                            dist::ProcessGrid({8}), 16);
  std::vector<std::int64_t> data(512, 7);
  auto gm = random_mask(512, 0.5, 321);
  auto a = dist::DistArray<std::int64_t>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);
  PackOptions opt;
  opt.scheme = PackScheme::kCompactMessage;
  auto result = pack(machine, a, m, opt);
  for (const auto& c : result.counters) {
    EXPECT_EQ(c.bytes_sent, 8 * c.packed + 16 * c.segments_sent);
    EXPECT_EQ(c.bytes_recv, 8 * c.recv_elems + 16 * c.segments_recv);
  }
}

TEST(WireFormat, PairSchemesBytesAreSixteenPerElement) {
  sim::Machine machine(8, sim::CostModel{10, 0.1, 0.01});
  auto d = dist::Distribution::block_cyclic(dist::Shape({512}),
                                            dist::ProcessGrid({8}), 16);
  std::vector<std::int64_t> data(512, 7);
  auto gm = random_mask(512, 0.5, 321);
  auto a = dist::DistArray<std::int64_t>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);
  for (PackScheme scheme :
       {PackScheme::kSimpleStorage, PackScheme::kCompactStorage}) {
    PackOptions opt;
    opt.scheme = scheme;
    auto result = pack(machine, a, m, opt);
    for (const auto& c : result.counters) {
      EXPECT_EQ(c.bytes_sent, 16 * c.packed);
      EXPECT_EQ(c.bytes_recv, 16 * c.recv_elems);
    }
  }
}

TEST(WireFormat, CmsNeverShipsMoreBytesThanPairs) {
  // Segments cost 16 bytes but cover >= 1 element each; a segment of one
  // element costs 24 vs 16 for a pair, so CMS *can* lose on pathological
  // masks -- but not when the result vector is block-distributed and
  // slices are dense, the regime the paper recommends it for.
  sim::Machine machine(4, sim::CostModel{10, 0.1, 0.01});
  auto d = dist::Distribution::block_cyclic(dist::Shape({256}),
                                            dist::ProcessGrid({4}), 32);
  std::vector<std::int64_t> data(256, 1);
  std::vector<mask_t> gm(256, 1);  // all true: one segment per slice
  auto a = dist::DistArray<std::int64_t>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);
  PackOptions cms, sss;
  cms.scheme = PackScheme::kCompactMessage;
  sss.scheme = PackScheme::kSimpleStorage;
  auto rc = pack(machine, a, m, cms);
  auto rs = pack(machine, a, m, sss);
  auto bytes = [](const PackResult<std::int64_t>& r) {
    std::int64_t b = 0;
    for (const auto& c : r.counters) b += c.bytes_sent;
    return b;
  };
  EXPECT_LT(bytes(rc), bytes(rs));
}

TEST(SssRecords, EncodeDecodeRoundTrip) {
  // decode_sss_record must invert the initial scan's record layout for a
  // 3-D local shape.
  const dist::Shape lshape({8, 4, 6});  // L0=8, L1=4, L2=6
  const dist::index_t w0 = 2;           // T0 = 4 tiles
  // Element at local (l0=5, l1=3, l2=2): tile0 = 2, in-slice rank 1.
  const std::int32_t rec[] = {5, 3, 2, /*tile0=*/2, /*init_rank=*/1};
  const SssRecord out = decode_sss_record(rec, lshape, w0);
  // slice = tile0 + T0*(l1 + L1*l2) = 2 + 4*(3 + 4*2) = 46.
  EXPECT_EQ(out.slice, 46);
  // local linear = l0 + L0*(l1 + L1*l2) = 5 + 8*11 = 93.
  EXPECT_EQ(out.local_linear, 93);
  EXPECT_EQ(out.init_rank, 1);
}

TEST(SliceScan, BothScanningMethodsProduceIdenticalResults) {
  // Paper Section 6.1 compares scanning a slice until all counted elements
  // are found (method 1) against always scanning the whole slice
  // (method 2); the data produced must be identical.
  sim::Machine machine(4, sim::CostModel{10, 0.1, 0.01});
  auto d = dist::Distribution::block_cyclic(dist::Shape({128}),
                                            dist::ProcessGrid({4}), 8);
  std::vector<std::int64_t> data(128);
  std::iota(data.begin(), data.end(), 0);
  auto gm = random_mask(128, 0.4, 77);
  auto a = dist::DistArray<std::int64_t>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);
  for (PackScheme scheme :
       {PackScheme::kCompactStorage, PackScheme::kCompactMessage}) {
    PackOptions early, full;
    early.scheme = full.scheme = scheme;
    early.slice_scan = SliceScan::kStopEarly;
    full.slice_scan = SliceScan::kFullSlice;
    auto r1 = pack(machine, a, m, early);
    auto r2 = pack(machine, a, m, full);
    EXPECT_EQ(r1.vector.gather(), r2.vector.gather());
    EXPECT_EQ(r1.vector.gather(), serial_pack<std::int64_t>(data, gm));
  }
}

TEST(SliceScan, FullSliceWorksOnRaggedArrays) {
  sim::Machine machine(4, sim::CostModel{10, 0.1, 0.01});
  auto d = dist::Distribution::block_cyclic(dist::Shape({29}),
                                            dist::ProcessGrid({4}), 4);
  std::vector<std::int64_t> data(29);
  std::iota(data.begin(), data.end(), 0);
  auto gm = random_mask(29, 0.6, 3);
  auto a = dist::DistArray<std::int64_t>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);
  PackOptions full;
  full.scheme = PackScheme::kCompactMessage;
  full.slice_scan = SliceScan::kFullSlice;
  auto r = pack(machine, a, m, full);
  EXPECT_EQ(r.vector.gather(), serial_pack<std::int64_t>(data, gm));
}

TEST(Counters, RecvElementsBoundedByBlock) {
  // Each processor receives at most ceil(Size/P) elements when the result
  // vector is block-distributed (the paper's E_a).
  sim::Machine machine(8, sim::CostModel{10, 0.1, 0.01});
  auto d = dist::Distribution::block_cyclic(dist::Shape({1024}),
                                            dist::ProcessGrid({8}), 8);
  std::vector<std::int64_t> data(1024, 1);
  auto gm = random_mask(1024, 0.37, 55);
  auto a = dist::DistArray<std::int64_t>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);
  auto result = pack(machine, a, m);
  const std::int64_t ea = (result.size + 7) / 8;
  for (const auto& c : result.counters) {
    EXPECT_LE(c.recv_elems, ea);
  }
}

TEST(Counters, SegmentsBoundedByMinOfSlicesTimesPAndPacked) {
  sim::Machine machine(4, sim::CostModel{10, 0.1, 0.01});
  auto d = dist::Distribution::block_cyclic(dist::Shape({256}),
                                            dist::ProcessGrid({4}), 8);
  std::vector<std::int64_t> data(256, 1);
  auto gm = random_mask(256, 0.7, 91);
  auto a = dist::DistArray<std::int64_t>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);
  PackOptions opt;
  opt.scheme = PackScheme::kCompactMessage;
  auto result = pack(machine, a, m, opt);
  for (const auto& c : result.counters) {
    EXPECT_LE(c.segments_sent, c.packed);  // Gs_i <= E_i (paper Section 6.4)
  }
}

}  // namespace
}  // namespace pup
