// Static plan verifier (analysis/static/):
//   * no-false-positive sweep -- every (scheme x PRS knob x M2M knob) plan
//     the compiler can produce at p in {4, 8, 16} (plus p = 6, which is the
//     only way to reach the dissemination-exscan + broadcast PRS path)
//     verifies clean, pack and unpack, batched and not;
//   * mutation matrix -- each seeded defect class is caught on every plan
//     shape it can be seeded into, and the verifier names the right rule
//     (0 escapes);
//   * dynamic cross-check -- a real execution's trace (ScheduleRecorder)
//     replays against the static expansion round for round, proving the
//     expansion honest: exact equality for ranking PRS, bound containment
//     for the mask-dependent M2M stages, charge ledger closed;
//   * mailbox accounting -- peaks are reported and budgets enforced.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "analysis/static/closed_form.hpp"
#include "analysis/static/expand.hpp"
#include "analysis/static/mutate.hpp"
#include "analysis/static/trace_check.hpp"
#include "analysis/static/verifier.hpp"
#include "core/api.hpp"
#include "plan/executor.hpp"

namespace pup {
namespace {

namespace st = analysis::statics;

sim::Machine make_machine(int p) {
  return sim::Machine(p, sim::CostModel{10.0, 0.1, 0.01});
}

/// The grid/extent shapes the sweep runs.  p = 6 grids exercise the
/// non-power-of-two direct PRS (exscan + broadcast); the 2-d grids give
/// every ranking step more than one PRS group.
struct GridCase {
  const char* name;
  int p;
  dist::Distribution dist;
};

std::vector<GridCase> grid_cases() {
  using dist::Distribution;
  using dist::ProcessGrid;
  using dist::Shape;
  return {
      {"p4.1d", 4, Distribution::block_cyclic(Shape({512}),
                                              ProcessGrid({4}), 16)},
      {"p6.1d", 6, Distribution::block_cyclic(Shape({720}),
                                              ProcessGrid({6}), 8)},
      {"p8.1d", 8, Distribution::block_cyclic(Shape({1024}),
                                              ProcessGrid({8}), 8)},
      {"p6.2d", 6, Distribution::block_cyclic(Shape({48, 36}),
                                              ProcessGrid({2, 3}), 4)},
      {"p16.2d", 16, Distribution::block_cyclic(Shape({64, 64}),
                                                ProcessGrid({4, 4}), 8)},
  };
}

const std::vector<PackScheme> kPackSchemes = {PackScheme::kSimpleStorage,
                                              PackScheme::kCompactStorage,
                                              PackScheme::kCompactMessage};
const std::vector<UnpackScheme> kUnpackSchemes = {
    UnpackScheme::kSimpleStorage, UnpackScheme::kCompactStorage};
// kAuto included: the plan compiler resolves it per dimension, so the sweep
// also covers whatever the selection rule picks.
const std::vector<coll::PrsAlgorithm> kPrsKnobs = {
    coll::PrsAlgorithm::kDirect, coll::PrsAlgorithm::kSplit,
    coll::PrsAlgorithm::kControlNetwork, coll::PrsAlgorithm::kAuto};
const std::vector<coll::M2MSchedule> kM2MKnobs = {
    coll::M2MSchedule::kLinearPermutation, coll::M2MSchedule::kNaive};

std::string case_name(const GridCase& gc, int scheme, int prs, int m2m) {
  return std::string(gc.name) + " scheme=" + std::to_string(scheme) +
         " prs=" + std::to_string(prs) + " m2m=" + std::to_string(m2m);
}

// ---------------------------------------------------------------------------
// No-false-positive sweep: every compilable plan shape verifies clean.

TEST(StaticVerifier, EveryPackPlanShapeVerifies) {
  for (const GridCase& gc : grid_cases()) {
    sim::Machine machine = make_machine(gc.p);
    for (std::size_t si = 0; si < kPackSchemes.size(); ++si) {
      for (std::size_t pi = 0; pi < kPrsKnobs.size(); ++pi) {
        for (std::size_t mi = 0; mi < kM2MKnobs.size(); ++mi) {
          PackOptions opt;
          opt.scheme = kPackSchemes[si];
          opt.prs = kPrsKnobs[pi];
          opt.schedule = kM2MKnobs[mi];
          const plan::PackPlan plan = plan::compile_pack_plan(
              machine, gc.dist, sizeof(double), opt);
          for (std::size_t batch : {std::size_t{1}, std::size_t{3}}) {
            const st::VerifyReport report =
                st::verify_plan(plan, machine.cost(), batch);
            EXPECT_TRUE(report.ok())
                << case_name(gc, static_cast<int>(si), static_cast<int>(pi),
                             static_cast<int>(mi))
                << " B=" << batch << ": " << report.summary()
                << (report.issues.empty()
                        ? ""
                        : "\n  first issue: [" + report.issues[0].rule +
                              "] " + report.issues[0].detail);
          }
        }
      }
    }
  }
}

TEST(StaticVerifier, EveryUnpackPlanShapeVerifies) {
  for (const GridCase& gc : grid_cases()) {
    sim::Machine machine = make_machine(gc.p);
    const auto vd = dist::Distribution::block1d(
        gc.dist.global().size() / 2 + 1, gc.p);
    for (std::size_t si = 0; si < kUnpackSchemes.size(); ++si) {
      for (std::size_t pi = 0; pi < kPrsKnobs.size(); ++pi) {
        for (std::size_t mi = 0; mi < kM2MKnobs.size(); ++mi) {
          UnpackOptions opt;
          opt.scheme = kUnpackSchemes[si];
          opt.prs = kPrsKnobs[pi];
          opt.schedule = kM2MKnobs[mi];
          const plan::UnpackPlan plan = plan::compile_unpack_plan(
              machine, gc.dist, vd, sizeof(double), opt);
          const st::VerifyReport report =
              st::verify_plan(plan, machine.cost());
          EXPECT_TRUE(report.ok())
              << case_name(gc, static_cast<int>(si), static_cast<int>(pi),
                           static_cast<int>(mi))
              << ": " << report.summary()
              << (report.issues.empty()
                      ? ""
                      : "\n  first issue: [" + report.issues[0].rule + "] " +
                            report.issues[0].detail);
        }
      }
    }
  }
}

// A pinned result layout changes the M2M bound arithmetic; it must verify
// too.
TEST(StaticVerifier, PinnedResultLayoutVerifies) {
  sim::Machine machine = make_machine(8);
  const auto d = dist::Distribution::block_cyclic(dist::Shape({1024}),
                                                  dist::ProcessGrid({8}), 8);
  const auto rd = dist::Distribution::block1d(1024, 8);
  PackOptions opt;
  opt.scheme = PackScheme::kCompactMessage;
  const plan::PackPlan plan =
      plan::compile_pack_plan(machine, d, sizeof(double), opt, rd);
  const st::VerifyReport report = st::verify_plan(plan, machine.cost());
  EXPECT_TRUE(report.ok()) << report.summary();
}

// ---------------------------------------------------------------------------
// Mutation matrix: 0 escapes across all defect classes and plan shapes.

TEST(StaticVerifier, MutationHarnessHasNoEscapes) {
  const std::vector<st::Defect> defects = {
      st::Defect::kDroppedPost,       st::Defect::kDroppedRecv,
      st::Defect::kDuplicatedTag,     st::Defect::kForeignTag,
      st::Defect::kCyclicDependency,  st::Defect::kUnderchargedRound,
      st::Defect::kMisroutedRecv,     st::Defect::kOversizedPayload,
  };
  int seeded_total = 0;
  for (const GridCase& gc : grid_cases()) {
    sim::Machine machine = make_machine(gc.p);
    for (PackScheme scheme : kPackSchemes) {
      for (coll::PrsAlgorithm prs :
           {coll::PrsAlgorithm::kDirect, coll::PrsAlgorithm::kSplit}) {
        for (coll::M2MSchedule m2m : kM2MKnobs) {
          PackOptions opt;
          opt.scheme = scheme;
          opt.prs = prs;
          opt.schedule = m2m;
          const plan::PackPlan plan = plan::compile_pack_plan(
              machine, gc.dist, sizeof(double), opt);
          const st::ExpandedPlan pristine =
              st::expand_pack_plan(plan, machine.cost());
          ASSERT_TRUE(st::verify_schedule(pristine.schedule,
                                          pristine.expectations)
                          .ok());
          for (st::Defect defect : defects) {
            st::ExpandedPlan mutated = pristine;
            if (!st::seed_defect(mutated.schedule, defect)) continue;
            ++seeded_total;
            const st::VerifyReport report = st::verify_schedule(
                mutated.schedule, mutated.expectations);
            const std::string want = st::expected_rule(defect);
            const bool caught = std::any_of(
                report.issues.begin(), report.issues.end(),
                [&](const st::VerifyIssue& i) { return i.rule == want; });
            EXPECT_TRUE(caught)
                << st::defect_name(defect) << " escaped on " << gc.name
                << " (" << pristine.schedule.origin << "); expected rule \""
                << want << "\", report: " << report.summary();
          }
        }
      }
    }
  }
  // Every defect class must have found at least one seeding site overall.
  EXPECT_GE(seeded_total, static_cast<int>(defects.size()));
}

// ---------------------------------------------------------------------------
// Dynamic cross-check: real executions replay against the expansion.

std::vector<mask_t> checkered_mask(dist::index_t n, std::uint64_t seed) {
  return random_mask(n, 0.45, seed);
}

TEST(StaticVerifier, PackTraceMatchesExpansion) {
  for (const GridCase& gc : grid_cases()) {
    sim::Machine machine = make_machine(gc.p);
    const dist::index_t n = gc.dist.global().size();
    std::vector<double> data(static_cast<std::size_t>(n));
    std::iota(data.begin(), data.end(), 1.0);
    const auto array = dist::DistArray<double>::scatter(gc.dist, data);
    const auto mask = dist::DistArray<mask_t>::scatter(
        gc.dist, checkered_mask(n, 0x5eed));

    for (PackScheme scheme : kPackSchemes) {
      for (coll::PrsAlgorithm prs : kPrsKnobs) {
        for (coll::M2MSchedule m2m : kM2MKnobs) {
          PackOptions opt;
          opt.scheme = scheme;
          opt.prs = prs;
          opt.schedule = m2m;
          const plan::PackPlan plan = plan::compile_pack_plan(
              machine, gc.dist, sizeof(double), opt);
          const st::ExpandedPlan expanded =
              st::expand_pack_plan(plan, machine.cost());

          st::ScheduleRecorder recorder;
          sim::MachineObserver* prev = machine.set_observer(&recorder);
          (void)plan::pack_with_plan(machine, plan, array, mask);
          machine.set_observer(prev);

          const st::TraceCheckResult check =
              st::check_trace(recorder, expanded.schedule);
          EXPECT_TRUE(check.ok())
              << expanded.schedule.origin << " on " << gc.name << ":\n  "
              << (check.issues.empty() ? "" : check.issues[0]);
        }
      }
    }
  }
}

TEST(StaticVerifier, BatchedPackTraceMatchesExpansion) {
  sim::Machine machine = make_machine(8);
  const auto d = dist::Distribution::block_cyclic(dist::Shape({1024}),
                                                  dist::ProcessGrid({8}), 8);
  std::vector<double> data(1024);
  std::iota(data.begin(), data.end(), 1.0);
  const std::size_t B = 3;
  std::vector<dist::DistArray<double>> arrays;
  std::vector<dist::DistArray<mask_t>> masks;
  for (std::size_t b = 0; b < B; ++b) {
    arrays.push_back(dist::DistArray<double>::scatter(d, data));
    masks.push_back(dist::DistArray<mask_t>::scatter(
        d, checkered_mask(1024, 0x100 + b)));
  }
  for (coll::M2MSchedule m2m : kM2MKnobs) {
    PackOptions opt;
    opt.scheme = PackScheme::kCompactMessage;
    opt.prs = coll::PrsAlgorithm::kSplit;
    opt.schedule = m2m;
    const plan::PackPlan plan =
        plan::compile_pack_plan(machine, d, sizeof(double), opt);
    const st::ExpandedPlan expanded =
        st::expand_pack_plan(plan, machine.cost(), B);

    st::ScheduleRecorder recorder;
    sim::MachineObserver* prev = machine.set_observer(&recorder);
    (void)plan::pack_batch<double>(machine, plan, masks, arrays);
    machine.set_observer(prev);

    const st::TraceCheckResult check =
        st::check_trace(recorder, expanded.schedule);
    EXPECT_TRUE(check.ok()) << expanded.schedule.origin << ":\n  "
                            << (check.issues.empty() ? "" : check.issues[0]);
  }
}

TEST(StaticVerifier, UnpackTraceMatchesExpansion) {
  for (const GridCase& gc : grid_cases()) {
    sim::Machine machine = make_machine(gc.p);
    const dist::index_t n = gc.dist.global().size();
    const auto gm = checkered_mask(n, 0xfeedbeef);
    const auto trues = static_cast<dist::index_t>(
        std::count(gm.begin(), gm.end(), mask_t{1}));
    const auto mask = dist::DistArray<mask_t>::scatter(gc.dist, gm);
    const auto field = dist::DistArray<double>::scatter(
        gc.dist, std::vector<double>(static_cast<std::size_t>(n), -1.0));
    const auto vd = dist::Distribution::block1d(trues, gc.p);
    std::vector<double> vdata(static_cast<std::size_t>(trues));
    std::iota(vdata.begin(), vdata.end(), 100.0);
    const auto v = dist::DistArray<double>::scatter(vd, vdata);

    for (UnpackScheme scheme : kUnpackSchemes) {
      for (coll::PrsAlgorithm prs : kPrsKnobs) {
        for (coll::M2MSchedule m2m : kM2MKnobs) {
          UnpackOptions opt;
          opt.scheme = scheme;
          opt.prs = prs;
          opt.schedule = m2m;
          const plan::UnpackPlan plan = plan::compile_unpack_plan(
              machine, gc.dist, vd, sizeof(double), opt);
          const st::ExpandedPlan expanded =
              st::expand_unpack_plan(plan, machine.cost());

          st::ScheduleRecorder recorder;
          sim::MachineObserver* prev = machine.set_observer(&recorder);
          (void)plan::unpack_with_plan(machine, plan, v, mask, field);
          machine.set_observer(prev);

          const st::TraceCheckResult check =
              st::check_trace(recorder, expanded.schedule);
          EXPECT_TRUE(check.ok())
              << expanded.schedule.origin << " on " << gc.name << ":\n  "
              << (check.issues.empty() ? "" : check.issues[0]);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Mailbox accounting.

TEST(StaticVerifier, MailboxPeakReportedAndBudgetEnforced) {
  sim::Machine machine = make_machine(8);
  const auto d = dist::Distribution::block_cyclic(dist::Shape({1024}),
                                                  dist::ProcessGrid({8}), 8);
  PackOptions opt;
  opt.scheme = PackScheme::kCompactStorage;
  const plan::PackPlan plan =
      plan::compile_pack_plan(machine, d, sizeof(double), opt);

  const st::VerifyReport unlimited = st::verify_plan(plan, machine.cost());
  ASSERT_TRUE(unlimited.ok());
  ASSERT_EQ(unlimited.peak_in_flight.size(), 8u);
  EXPECT_GT(unlimited.peak.bytes, 0u);
  EXPECT_GE(unlimited.peak.rank, 0);
  for (std::size_t bytes : unlimited.peak_in_flight) {
    EXPECT_LE(bytes, unlimited.peak.bytes);
  }

  st::VerifyOptions tight;
  tight.mailbox_budget_bytes = 1;
  const st::VerifyReport capped =
      st::verify_plan(plan, machine.cost(), 1, tight);
  EXPECT_FALSE(capped.ok());
  EXPECT_TRUE(std::any_of(capped.issues.begin(), capped.issues.end(),
                          [](const st::VerifyIssue& i) {
                            return i.rule == "mailbox-budget";
                          }))
      << capped.summary();

  st::VerifyOptions loose;
  loose.mailbox_budget_bytes = unlimited.peak.bytes;
  EXPECT_TRUE(st::verify_plan(plan, machine.cost(), 1, loose).ok());
}

// ---------------------------------------------------------------------------
// Closed forms: spot-check the algebra against hand computations.

TEST(StaticVerifier, ClosedFormDirectPow2) {
  const sim::CostModel cost{10.0, 0.1, 0.01};
  // G = 8, 16 int64 words: 3 rounds of tau + mu*128 per member.
  const auto costs =
      st::predict_prs(coll::PrsAlgorithm::kDirect, 8, 16, 8, cost);
  ASSERT_EQ(costs.size(), 8u);
  for (const auto& mc : costs) {
    EXPECT_EQ(mc.posts, 3);
    EXPECT_EQ(mc.recvs, 3);
    EXPECT_EQ(mc.bytes_out, 3u * 128u);
    EXPECT_DOUBLE_EQ(mc.charge_us, 3 * (10.0 + 0.1 * 128));
  }
}

TEST(StaticVerifier, ClosedFormSplitConservesBytes) {
  const sim::CostModel cost{10.0, 0.1, 0.01};
  for (int G : {3, 4, 7, 8}) {
    for (std::size_t M : {std::size_t{5}, std::size_t{64}}) {
      const auto costs =
          st::predict_prs(coll::PrsAlgorithm::kSplit, G, M, 8, cost);
      std::size_t out = 0;
      std::size_t in = 0;
      for (const auto& mc : costs) {
        out += mc.bytes_out;
        in += mc.bytes_in;
      }
      // Every byte posted is received exactly once.
      EXPECT_EQ(out, in) << "G=" << G << " M=" << M;
      // Phase 1 ships all non-self chunks once (M - own chunks), phase 2
      // returns them doubled: total = 3 * 8 * sum of non-self chunk sizes.
      std::size_t nonself = 0;
      for (int c = 0; c < G; ++c) {
        const std::size_t lo = (M * static_cast<std::size_t>(c)) /
                               static_cast<std::size_t>(G);
        const std::size_t hi = (M * static_cast<std::size_t>(c + 1)) /
                               static_cast<std::size_t>(G);
        nonself += (hi - lo) * static_cast<std::size_t>(G - 1);
      }
      EXPECT_EQ(out, 3u * 8u * nonself) << "G=" << G << " M=" << M;
    }
  }
}

TEST(StaticVerifier, ClosedFormGroupOfOneIsFree) {
  const sim::CostModel cost{10.0, 0.1, 0.01};
  for (coll::PrsAlgorithm alg :
       {coll::PrsAlgorithm::kDirect, coll::PrsAlgorithm::kSplit,
        coll::PrsAlgorithm::kControlNetwork}) {
    const auto costs = st::predict_prs(alg, 1, 64, 8, cost);
    ASSERT_EQ(costs.size(), 1u);
    EXPECT_EQ(costs[0].posts, 0);
    EXPECT_DOUBLE_EQ(costs[0].charge_us, 0.0);
  }
}

// require_verified: the ResilientExecutor debug hook aborts with the
// report's issues.
TEST(StaticVerifier, RequireVerifiedThrowsWithIssues) {
  sim::Machine machine = make_machine(4);
  const auto d = dist::Distribution::block_cyclic(dist::Shape({512}),
                                                  dist::ProcessGrid({4}), 16);
  PackOptions opt;
  opt.scheme = PackScheme::kCompactStorage;
  const plan::PackPlan plan =
      plan::compile_pack_plan(machine, d, sizeof(double), opt);
  st::ExpandedPlan expanded = st::expand_pack_plan(plan, machine.cost());
  st::require_verified(
      st::verify_schedule(expanded.schedule, expanded.expectations),
      "pristine plan");  // must not throw
  ASSERT_TRUE(st::seed_defect(expanded.schedule, st::Defect::kDroppedPost));
  EXPECT_THROW(
      st::require_verified(
          st::verify_schedule(expanded.schedule, expanded.expectations),
          "mutated plan"),
      ContractError);
}

}  // namespace
}  // namespace pup
