// Determinism-checker tests: the library's operations replay bit-for-bit,
// and deliberately nondeterministic operations are caught with a useful
// first-difference report.
#include <gtest/gtest.h>

#include <numeric>
#include <utility>
#include <vector>

#include "analysis/determinism.hpp"
#include "analysis/protocol_validator.hpp"
#include "core/api.hpp"

namespace pup {
namespace {

const sim::CostModel kCost{10.0, 0.05, 0.01};

TEST(Determinism, PackReplaysIdentically) {
  const dist::index_t n = 64;
  auto report = analysis::check_determinism(4, kCost, [&](sim::Machine& m) {
    auto d = dist::Distribution::block_cyclic(dist::Shape({n}),
                                              dist::ProcessGrid({4}), 4);
    std::vector<int> data(static_cast<std::size_t>(n));
    std::iota(data.begin(), data.end(), 0);
    auto mask = random_mask(n, 0.5, 17);
    auto a = dist::DistArray<int>::scatter(d, data);
    auto mk = dist::DistArray<mask_t>::scatter(d, mask);
    (void)pack(m, a, mk);
  });
  EXPECT_TRUE(report.deterministic) << report.diff;
  EXPECT_EQ(report.diff, "");
  EXPECT_GT(report.first.messages, 0);
  EXPECT_EQ(report.first, report.second);
}

TEST(Determinism, CollectivesReplayIdentically) {
  auto report = analysis::check_determinism(4, kCost, [](sim::Machine& m) {
    const auto g = coll::Group::world(4);
    std::vector<std::vector<int>> bufs(4);
    for (int r = 0; r < 4; ++r) bufs[r] = {r, r * r};
    coll::allreduce_sum(m, g, bufs);

    std::vector<std::vector<std::vector<int>>> send(4);
    for (int src = 0; src < 4; ++src) {
      send[src].resize(4);
      for (int dst = 0; dst < 4; ++dst) {
        send[src][dst].assign(static_cast<std::size_t>(src + 1), dst);
      }
    }
    (void)coll::alltoallv_typed(m, g, std::move(send));
  });
  EXPECT_TRUE(report.deterministic) << report.diff;
}

TEST(Determinism, CatchesPayloadThatVariesAcrossRuns) {
  int run = 0;
  auto report = analysis::check_determinism(2, kCost, [&](sim::Machine& m) {
    ++run;
    // A payload whose size depends on invocation count: the digest's byte
    // totals differ between the two replays.
    std::vector<std::byte> payload(static_cast<std::size_t>(8 * run));
    m.post(sim::Message{0, 1, 1, std::move(payload)}, sim::Category::kM2M);
    (void)m.receive_required(1, 0, 1);
  });
  EXPECT_FALSE(report.deterministic);
  EXPECT_NE(report.diff, "");
  EXPECT_NE(report.first, report.second);
}

TEST(Determinism, CatchesChargeThatVariesAcrossRuns) {
  int run = 0;
  auto report = analysis::check_determinism(2, kCost, [&](sim::Machine& m) {
    ++run;
    m.charge(0, sim::Category::kPrs, run == 1 ? 1.0 : 2.0);
  });
  EXPECT_FALSE(report.deterministic);
  EXPECT_NE(report.diff, "");
}

TEST(Determinism, DigestExcludesRealWallClockTime) {
  // local_phase charges real wall-clock time, which is never reproducible;
  // the digest must ignore it so identical logic replays identically.
  auto report = analysis::check_determinism(2, kCost, [](sim::Machine& m) {
    m.local_phase([](int rank) {
      volatile long sink = 0;
      for (long i = 0; i < 10000 * (rank + 1); ++i) sink = sink + i;
    });
  });
  EXPECT_TRUE(report.deterministic) << report.diff;
}

TEST(Determinism, ThreadedExecutionMatchesSequentialDigest) {
  // The threaded execution policy may only change wall-clock time: the
  // digest (messages, bytes, modeled charges) and the packed data must be
  // bit-identical to a sequential run of the same operation.
  const dist::index_t n = 4096;
  auto d = dist::Distribution::block_cyclic(dist::Shape({n}),
                                            dist::ProcessGrid({8}), 64);
  std::vector<int> data(static_cast<std::size_t>(n));
  std::iota(data.begin(), data.end(), 0);
  auto gm = random_mask(n, 0.5, 23);

  auto run = [&](sim::Machine& m) {
    analysis::DigestRecorder recorder(m);
    auto a = dist::DistArray<int>::scatter(d, data);
    auto mk = dist::DistArray<mask_t>::scatter(d, gm);
    PackOptions opt;
    opt.scheme = PackScheme::kAuto;
    auto r = pack(m, a, mk, opt);
    return std::make_pair(recorder.digest(), r.vector.gather());
  };

  sim::Machine seq(8, kCost, sim::Topology::crossbar(8),
                   sim::ExecPolicy::sequential());
  sim::Machine par(8, kCost, sim::Topology::crossbar(8),
                   sim::ExecPolicy::threaded(4));
  const auto [dseq, vseq] = run(seq);
  const auto [dpar, vpar] = run(par);
  EXPECT_EQ(dseq, dpar) << analysis::diff_digests(dseq, dpar);
  EXPECT_EQ(vseq, vpar);
  EXPECT_GT(dseq.messages, 0);
}

TEST(Determinism, RecorderStacksWithProtocolValidator) {
  sim::Machine machine(4, kCost);
  analysis::ProtocolValidator validator(machine);
  analysis::DigestRecorder recorder(machine);

  const auto g = coll::Group::world(4);
  std::vector<std::vector<int>> bufs(4);
  for (int r = 0; r < 4; ++r) bufs[r] = {r};
  coll::broadcast(machine, g, 0, bufs);

  // The recorder forwards every event, so the validator (attached first)
  // still sees the full protocol; both observers report on the same run.
  const auto digest = recorder.digest();
  EXPECT_GT(digest.messages, 0);
  EXPECT_EQ(digest.messages, validator.stats().posts);
  validator.finish();
  EXPECT_TRUE(validator.ok()) << validator.report();
}

}  // namespace
}  // namespace pup
