// Unit tests for the logical processor grid.
#include <gtest/gtest.h>

#include <set>

#include "dist/process_grid.hpp"
#include "support/check.hpp"

namespace pup::dist {
namespace {

TEST(ProcessGrid, RankNumberingIsDimensionZeroFastest) {
  ProcessGrid g({4, 2});  // P_0 = 4, P_1 = 2
  EXPECT_EQ(g.nprocs(), 8);
  // rank = c_0 + 4 * c_1.
  const index_t coord[] = {3, 1};
  EXPECT_EQ(g.rank_of(coord), 7);
  EXPECT_EQ(g.coord_of(7, 0), 3);
  EXPECT_EQ(g.coord_of(7, 1), 1);
}

TEST(ProcessGrid, CoordsRoundTrip) {
  ProcessGrid g({3, 2, 2});
  for (int r = 0; r < g.nprocs(); ++r) {
    auto c = g.coords_of(r);
    EXPECT_EQ(g.rank_of(c), r);
    for (int k = 0; k < g.rank(); ++k) {
      EXPECT_EQ(g.coord_of(r, k), c[static_cast<std::size_t>(k)]);
    }
  }
}

TEST(ProcessGrid, GroupsAlongDimensionPartitionTheMachine) {
  ProcessGrid g({4, 3});
  for (int k = 0; k < 2; ++k) {
    auto groups = g.groups_along(k);
    EXPECT_EQ(static_cast<int>(groups.size()), g.nprocs() / g.extent(k));
    std::set<int> seen;
    for (const auto& grp : groups) {
      EXPECT_EQ(static_cast<int>(grp.size()), g.extent(k));
      for (int r : grp) {
        EXPECT_TRUE(seen.insert(r).second) << "rank appears twice";
      }
    }
    EXPECT_EQ(static_cast<int>(seen.size()), g.nprocs());
  }
}

TEST(ProcessGrid, GroupsOrderedByCoordinate) {
  ProcessGrid g({2, 3});
  for (int k = 0; k < 2; ++k) {
    for (const auto& grp : g.groups_along(k)) {
      for (std::size_t i = 0; i < grp.size(); ++i) {
        EXPECT_EQ(g.coord_of(grp[i], k), static_cast<index_t>(i));
      }
      // All other coordinates identical within a group.
      for (int other = 0; other < 2; ++other) {
        if (other == k) continue;
        for (int r : grp) {
          EXPECT_EQ(g.coord_of(r, other), g.coord_of(grp[0], other));
        }
      }
    }
  }
}

TEST(ProcessGrid, SingleProcessor) {
  ProcessGrid g({1});
  EXPECT_EQ(g.nprocs(), 1);
  auto groups = g.groups_along(0);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], std::vector<int>{0});
}

TEST(ProcessGrid, BadArgsThrow) {
  EXPECT_THROW(ProcessGrid(std::vector<int>{}), ContractError);
  EXPECT_THROW(ProcessGrid({0}), ContractError);
  EXPECT_THROW(ProcessGrid({2, -1}), ContractError);
}

}  // namespace
}  // namespace pup::dist
