// Plan subsystem lifecycle and batching guarantees:
//   * compile-then-execute equals the direct path (results and digests);
//   * a plan-cache hit performs zero geometry recompilation
//     (ranking_schedules_compiled-asserted) and is observer-visible;
//   * LRU eviction under a small capacity; invalidation after
//     redistribution;
//   * pack_batch is element-identical to B independent packs while
//     charging at most half the PRS startups for B >= 4;
//   * batched execution is digest-deterministic (also re-registered under
//     PUP_THREADS=4 by tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "analysis/determinism.hpp"
#include "analysis/protocol_validator.hpp"
#include "core/api.hpp"
#include "plan/executor.hpp"
#include "plan/plan_cache.hpp"
#include "sim/fault.hpp"

namespace pup {
namespace {

sim::Machine make_machine(int p) {
  return sim::Machine(p, sim::CostModel{10.0, 0.1, 0.01});
}

struct PackWorkload {
  dist::Distribution d;
  dist::DistArray<std::int64_t> array;
  dist::DistArray<mask_t> mask;
  std::vector<std::int64_t> data;
  std::vector<mask_t> gm;
};

PackWorkload make_workload(dist::index_t n, int p, dist::index_t block,
                           double density, std::uint64_t seed) {
  PackWorkload wl;
  wl.d = dist::Distribution::block_cyclic(dist::Shape({n}),
                                          dist::ProcessGrid({p}), block);
  wl.data.resize(static_cast<std::size_t>(n));
  std::iota(wl.data.begin(), wl.data.end(), 1);
  wl.gm = random_mask(n, density, seed);
  wl.array = dist::DistArray<std::int64_t>::scatter(wl.d, wl.data);
  wl.mask = dist::DistArray<mask_t>::scatter(wl.d, wl.gm);
  return wl;
}

TEST(Plan, CompileThenExecuteMatchesDirectPath) {
  const int P = 8;
  sim::Machine machine = make_machine(P);
  PackWorkload wl = make_workload(4096, P, 32, 0.4, 0xbeef);

  for (PackScheme s : {PackScheme::kSimpleStorage,
                       PackScheme::kCompactStorage,
                       PackScheme::kCompactMessage}) {
    PackOptions opt;
    opt.scheme = s;

    machine.reset_accounting();
    analysis::DigestRecorder direct_rec(machine);
    auto direct = pack(machine, wl.array, wl.mask, opt);
    const auto direct_digest = direct_rec.digest();

    const plan::PackPlan p =
        plan::compile_pack_plan(machine, wl.d, sizeof(std::int64_t), opt);
    machine.reset_accounting();
    analysis::DigestRecorder plan_rec(machine);
    auto planned = plan::pack_with_plan(machine, p, wl.array, wl.mask);
    const auto plan_digest = plan_rec.digest();

    EXPECT_EQ(planned.vector.gather(), direct.vector.gather());
    EXPECT_EQ(planned.size, direct.size);
    EXPECT_EQ(plan_digest, direct_digest)
        << analysis::diff_digests(plan_digest, direct_digest);
  }
}

TEST(Plan, UnpackCompileThenExecuteMatchesDirectPath) {
  const int P = 4;
  sim::Machine machine = make_machine(P);
  const dist::index_t n = 1024;
  auto d = dist::Distribution::block_cyclic(dist::Shape({n}),
                                            dist::ProcessGrid({P}), 16);
  auto gm = random_mask(n, 0.5, 0xfeed);
  std::vector<double> fdata(static_cast<std::size_t>(n), -1.0);
  auto mask = dist::DistArray<mask_t>::scatter(d, gm);
  auto field = dist::DistArray<double>::scatter(d, fdata);
  const auto trues = static_cast<dist::index_t>(
      std::count(gm.begin(), gm.end(), mask_t{1}));
  auto vd = dist::Distribution::block1d(trues, P);
  std::vector<double> vdata(static_cast<std::size_t>(trues));
  std::iota(vdata.begin(), vdata.end(), 100.0);
  auto v = dist::DistArray<double>::scatter(vd, vdata);

  for (UnpackScheme s :
       {UnpackScheme::kSimpleStorage, UnpackScheme::kCompactStorage}) {
    UnpackOptions opt;
    opt.scheme = s;

    machine.reset_accounting();
    analysis::DigestRecorder direct_rec(machine);
    auto direct = unpack(machine, v, mask, field, opt);
    const auto direct_digest = direct_rec.digest();

    const plan::UnpackPlan p =
        plan::compile_unpack_plan(machine, d, vd, sizeof(double), opt);
    machine.reset_accounting();
    analysis::DigestRecorder plan_rec(machine);
    auto planned = plan::unpack_with_plan(machine, p, v, mask, field);
    const auto plan_digest = plan_rec.digest();

    EXPECT_EQ(planned.result.gather(), direct.result.gather());
    EXPECT_EQ(plan_digest, direct_digest)
        << analysis::diff_digests(plan_digest, direct_digest);
  }
}

TEST(PlanCache, HitSkipsRecompilationAndIsCounted) {
  const int P = 4;
  sim::Machine machine = make_machine(P);
  PackWorkload wl = make_workload(512, P, 8, 0.5, 0xabc);
  PackOptions opt;
  opt.scheme = PackScheme::kCompactMessage;

  plan::PlanCache cache(4);
  auto p1 = cache.pack_plan(machine, wl.d, sizeof(std::int64_t), opt);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 0);

  // Second lookup: a hit, the same plan object, and -- the acceptance
  // criterion -- zero geometry recompilation anywhere in the process.
  const std::int64_t compiled_before = ranking_schedules_compiled();
  auto p2 = cache.pack_plan(machine, wl.d, sizeof(std::int64_t), opt);
  EXPECT_EQ(ranking_schedules_compiled(), compiled_before);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(p1.get(), p2.get());

  // Executing off the cached plan also recompiles nothing (the direct
  // pack() path, by contrast, compiles a schedule per call).
  auto result = plan::pack_with_plan(machine, *p2, wl.array, wl.mask);
  EXPECT_EQ(ranking_schedules_compiled(), compiled_before);
  EXPECT_EQ(result.vector.gather(),
            serial_pack<std::int64_t>(wl.data, wl.gm));

  // A different key (other scheme) is a fresh miss, not a hit.
  PackOptions other = opt;
  other.scheme = PackScheme::kSimpleStorage;
  (void)cache.pack_plan(machine, wl.d, sizeof(std::int64_t), other);
  EXPECT_EQ(cache.stats().misses, 2);
}

TEST(PlanCache, CacheEventsReachMachineObserver) {
  // The hit/miss/compile annotations flow through the MachineObserver
  // phase hooks; the validator's phase counter must see all of them.
  const int P = 4;
  sim::Machine machine = make_machine(P);
  auto d = dist::Distribution::block_cyclic(dist::Shape({256}),
                                            dist::ProcessGrid({P}), 8);
  plan::PlanCache cache(4);
  analysis::ProtocolValidator validator(machine);
  const std::int64_t before = validator.stats().phases;
  (void)cache.pack_plan(machine, d, sizeof(std::int64_t));  // miss + compile
  const std::int64_t after_miss = validator.stats().phases;
  EXPECT_EQ(after_miss, before + 2);  // plan.cache.miss + plan.compile
  (void)cache.pack_plan(machine, d, sizeof(std::int64_t));  // hit
  EXPECT_EQ(validator.stats().phases, after_miss + 1);  // plan.cache.hit
  validator.finish();
  EXPECT_TRUE(validator.ok()) << validator.report();
}

TEST(PlanCache, EvictsLeastRecentlyUsedUnderSmallCapacity) {
  const int P = 4;
  sim::Machine machine = make_machine(P);
  plan::PlanCache cache(2);
  std::vector<dist::Distribution> dists;
  for (dist::index_t block : {4, 8, 16}) {
    dists.push_back(dist::Distribution::block_cyclic(
        dist::Shape({256}), dist::ProcessGrid({P}), block));
  }
  (void)cache.pack_plan(machine, dists[0], 8);
  (void)cache.pack_plan(machine, dists[1], 8);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0);

  // Touch dists[0] so dists[1] is the LRU entry, then overflow.
  (void)cache.pack_plan(machine, dists[0], 8);
  EXPECT_EQ(cache.stats().hits, 1);
  (void)cache.pack_plan(machine, dists[2], 8);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.size(), 2u);

  // dists[0] survived (hit); dists[1] was evicted (miss again).
  (void)cache.pack_plan(machine, dists[0], 8);
  EXPECT_EQ(cache.stats().hits, 2);
  (void)cache.pack_plan(machine, dists[1], 8);
  EXPECT_EQ(cache.stats().misses, 4);
}

TEST(PlanCache, PressureStatsTrackFillAndEvictionAge) {
  const int P = 4;
  sim::Machine machine = make_machine(P);
  plan::PlanCache cache(2);
  std::vector<dist::Distribution> dists;
  for (dist::index_t block : {4, 8, 16}) {
    dists.push_back(dist::Distribution::block_cyclic(
        dist::Shape({256}), dist::ProcessGrid({P}), block));
  }

  // Empty cache: pressure fields report capacity and the no-eviction
  // sentinel.
  auto s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.capacity, 2u);
  EXPECT_EQ(s.lookups, 0);
  EXPECT_EQ(s.last_eviction_age, -1);
  EXPECT_EQ(s.max_eviction_age, -1);

  (void)cache.pack_plan(machine, dists[0], 8);  // lookup 1, inserts d0
  (void)cache.pack_plan(machine, dists[1], 8);  // lookup 2, inserts d1
  s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.lookups, 2);
  EXPECT_EQ(s.last_eviction_age, -1);

  // Overflow: d0 (last touched at lookup 1) is evicted by lookup 3, so
  // the eviction age -- lookups since the victim was last touched -- is 2.
  (void)cache.pack_plan(machine, dists[2], 8);
  s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.lookups, 3);
  EXPECT_EQ(s.last_eviction_age, 2);
  EXPECT_EQ(s.max_eviction_age, 2);

  // A hit refreshes last_used, so the *other* entry becomes the victim
  // with a smaller age: hit d2 (lookup 4), then insert d0 (lookup 5) --
  // victim d1 was last touched at lookup 2, age 3.
  (void)cache.pack_plan(machine, dists[2], 8);
  (void)cache.pack_plan(machine, dists[0], 8);
  s = cache.stats();
  EXPECT_EQ(s.lookups, 5);
  EXPECT_EQ(s.last_eviction_age, 3);
  EXPECT_EQ(s.max_eviction_age, 3);

  // Churn: lookup 6 evicts the d2 entry hit at lookup 4, age 2 -- small
  // ages mean the working set exceeds capacity -- while max_eviction_age
  // keeps the high-water mark.
  (void)cache.pack_plan(machine, dists[1], 8);
  s = cache.stats();
  EXPECT_EQ(s.last_eviction_age, 2);
  EXPECT_EQ(s.max_eviction_age, 3);
}

TEST(PlanCache, InvalidationAfterRedistribution) {
  const int P = 4;
  sim::Machine machine = make_machine(P);
  const dist::index_t n = 512;
  auto src_d = dist::Distribution::block_cyclic(dist::Shape({n}),
                                                dist::ProcessGrid({P}), 4);
  auto dst_d = dist::Distribution::block_cyclic(dist::Shape({n}),
                                                dist::ProcessGrid({P}), 32);
  std::vector<std::int64_t> data(static_cast<std::size_t>(n));
  std::iota(data.begin(), data.end(), 0);
  auto gm = random_mask(n, 0.5, 0x1d);
  auto array = dist::DistArray<std::int64_t>::scatter(src_d, data);
  auto mask = dist::DistArray<mask_t>::scatter(src_d, gm);

  plan::PlanCache cache(8);
  auto p = cache.pack_plan(machine, src_d, sizeof(std::int64_t));
  auto held = p;  // an in-flight consumer keeps the plan alive

  // The array moves to a new layout; plans for the old one no longer
  // apply to it.
  auto moved = dist::DistArray<std::int64_t>(dst_d);
  dist::redistribute(machine, array, moved);
  EXPECT_EQ(cache.invalidate(machine, src_d), 1u);
  EXPECT_EQ(cache.stats().invalidations, 1);
  EXPECT_EQ(cache.size(), 0u);

  // Next lookup for the old layout is a compile, not a stale hit.
  (void)cache.pack_plan(machine, src_d, sizeof(std::int64_t));
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.stats().hits, 0);

  // The held shared_ptr stays valid and usable after invalidation.
  auto result = plan::pack_with_plan(machine, *held, array, mask);
  EXPECT_EQ(result.vector.gather(), serial_pack<std::int64_t>(data, gm));
}

TEST(PlanCache, InvalidateMatchesEveryDistributionInTheKey) {
  // Regression: invalidate() used to compare only the *source* layout, so
  // plans referencing the redistributed layout through a pack plan's
  // pinned result_dist or an unpack plan's vector_dist survived as stale
  // LRU squatters.
  const int P = 4;
  sim::Machine machine = make_machine(P);
  const dist::index_t n = 512;
  auto mask_d = dist::Distribution::block_cyclic(dist::Shape({n}),
                                                 dist::ProcessGrid({P}), 8);
  auto vec_d = dist::Distribution::block1d(n / 2, P);

  plan::PlanCache cache(8);
  (void)cache.unpack_plan(machine, mask_d, vec_d, sizeof(double));
  PackOptions opt;
  opt.scheme = PackScheme::kCompactMessage;
  (void)cache.pack_plan(machine, mask_d, sizeof(double), opt, vec_d);
  // A pack plan with no pinned result layout must NOT match vec_d.
  (void)cache.pack_plan(machine, mask_d, sizeof(double), opt);
  ASSERT_EQ(cache.size(), 3u);

  // Redistributing the n/2 vector layout invalidates the unpack plan (its
  // vector_dist) and the pinned pack plan (its result_dist), nothing else.
  EXPECT_EQ(cache.invalidate(machine, vec_d), 2u);
  EXPECT_EQ(cache.stats().invalidations, 2);
  EXPECT_EQ(cache.size(), 1u);

  // Redistributing the mask/array layout drops the survivor.
  EXPECT_EQ(cache.invalidate(machine, mask_d), 1u);
  EXPECT_EQ(cache.stats().invalidations, 3);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCache, InvalidateAndClearAnnotateTheObserver) {
  // Regression: invalidate()/clear() used to drop entries silently; every
  // dropped plan must surface as one paired plan.cache.invalidate phase.
  const int P = 4;
  sim::Machine machine = make_machine(P);
  auto mask_d = dist::Distribution::block_cyclic(dist::Shape({256}),
                                                 dist::ProcessGrid({P}), 8);
  auto vec_d = dist::Distribution::block1d(128, P);
  plan::PlanCache cache(8);
  (void)cache.unpack_plan(machine, mask_d, vec_d, sizeof(double));
  (void)cache.pack_plan(machine, mask_d, sizeof(double));

  struct PhaseCounter final : sim::MachineObserver {
    std::int64_t invalidate_begins = 0;
    std::int64_t invalidate_ends = 0;
    void on_phase_begin(const char* name) override {
      if (std::string(name) == "plan.cache.invalidate") ++invalidate_begins;
    }
    void on_phase_end(const char* name) override {
      if (std::string(name) == "plan.cache.invalidate") ++invalidate_ends;
    }
  };
  PhaseCounter counter;
  auto* prev = machine.set_observer(&counter);

  EXPECT_EQ(cache.invalidate(machine, vec_d), 1u);  // the unpack plan
  EXPECT_EQ(counter.invalidate_begins, 1);
  EXPECT_EQ(counter.invalidate_ends, 1);

  EXPECT_EQ(cache.size(), 1u);
  cache.clear(machine);  // the remaining pack plan, same annotation
  EXPECT_EQ(counter.invalidate_begins, 2);
  EXPECT_EQ(counter.invalidate_ends, 2);
  EXPECT_EQ(cache.stats().invalidations, 2);
  EXPECT_EQ(cache.size(), 0u);

  machine.set_observer(prev);
}

TEST(PlanCache, RejectsAutoScheme) {
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({256}),
                                            dist::ProcessGrid({4}), 8);
  PackOptions opt;
  opt.scheme = PackScheme::kAuto;
  plan::PlanCache cache(4);
  EXPECT_THROW((void)cache.pack_plan(machine, d, 8, opt), ContractError);
  UnpackOptions uopt;
  uopt.scheme = UnpackScheme::kAuto;
  EXPECT_THROW(
      (void)cache.unpack_plan(machine, d, dist::Distribution::block1d(128, 4),
                              8, uopt),
      ContractError);
}

TEST(PlanCache, ConcurrentInvalidateAndClearStaySerialized) {
  // Regression: invalidate()/clear() used to mutate the LRU list and index
  // with no synchronization, so a maintenance thread invalidating plans
  // after a redistribution could race another thread's lookup bookkeeping
  // and corrupt the cache.  All public operations now serialize on one
  // internal mutex, and annotations ride the machine's serialized-observer
  // discipline -- the observer must see exactly one paired annotation per
  // dropped plan, never interleaved halves.  (TSan covers the memory-order
  // side when the suite runs under the sanitizer jobs.)
  const int P = 4;
  sim::Machine machine = make_machine(P);
  // Annotation scoping is fault-plan-only state and main-thread-only;
  // concurrent cache metadata operations require a fault-free machine.
  machine.set_fault_plan(nullptr);
  const dist::index_t n = 256;
  constexpr int kDists = 8;
  std::vector<dist::Distribution> dists;
  for (int i = 0; i < kDists; ++i) {
    dists.push_back(dist::Distribution::block_cyclic(
        dist::Shape({n}), dist::ProcessGrid({P}), i + 1));
  }

  struct PhaseCounter final : sim::MachineObserver {
    std::int64_t begins = 0;
    std::int64_t ends = 0;
    void on_phase_begin(const char* name) override {
      if (std::string(name) == "plan.cache.invalidate") ++begins;
    }
    void on_phase_end(const char* name) override {
      if (std::string(name) == "plan.cache.invalidate") ++ends;
    }
  };
  PhaseCounter counter;
  auto* prev = machine.set_observer(&counter);

  // Compiles drive the machine's collectives and stay on this thread; the
  // threads below only exercise the metadata surface.
  plan::PlanCache cache(16);
  for (const auto& d : dists) {
    (void)cache.pack_plan(machine, d, sizeof(std::int64_t));
  }
  ASSERT_EQ(cache.size(), static_cast<std::size_t>(kDists));

  // Four threads: each invalidates a disjoint quarter of the
  // distributions while all of them hammer size()/stats().
  std::atomic<std::size_t> dropped{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int iter = 0; iter < 100; ++iter) {
        (void)cache.size();
        (void)cache.stats();
      }
      for (int i = t; i < kDists; i += 4) {
        dropped += cache.invalidate(machine, dists[static_cast<std::size_t>(i)]);
      }
      for (int iter = 0; iter < 100; ++iter) (void)cache.size();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(dropped.load(), static_cast<std::size_t>(kDists));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, kDists);
  EXPECT_EQ(counter.begins, kDists);
  EXPECT_EQ(counter.ends, kDists);

  // Racing clears: exactly one drops the repopulated entries, the rest see
  // an empty cache; the counters never double-count.
  for (const auto& d : dists) {
    (void)cache.pack_plan(machine, d, sizeof(std::int64_t));
  }
  ASSERT_EQ(cache.size(), static_cast<std::size_t>(kDists));
  std::vector<std::thread> clearers;
  for (int t = 0; t < 4; ++t) {
    clearers.emplace_back([&] { cache.clear(machine); });
  }
  for (auto& th : clearers) th.join();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().invalidations, 2 * kDists);
  EXPECT_EQ(counter.begins, 2 * kDists);
  EXPECT_EQ(counter.ends, 2 * kDists);

  machine.set_observer(prev);
}

TEST(PackBatch, MatchesIndependentCallsAndHalvesPrsStartups) {
  const int P = 8;
  const dist::index_t n = 4096;
  const std::size_t B = 4;
  PackOptions opt;
  opt.scheme = PackScheme::kCompactMessage;

  std::vector<PackWorkload> wls;
  for (std::size_t b = 0; b < B; ++b) {
    wls.push_back(make_workload(n, P, 16, 0.2 + 0.15 * static_cast<double>(b),
                                0x9000 + b));
  }

  // B independent packs: reference results and the PRS startup baseline.
  sim::Machine indep = make_machine(P);
  std::vector<std::vector<std::int64_t>> expected;
  for (std::size_t b = 0; b < B; ++b) {
    auto r = pack(indep, wls[b].array, wls[b].mask, opt);
    expected.push_back(r.vector.gather());
    EXPECT_EQ(expected.back(), serial_pack<std::int64_t>(wls[b].data, wls[b].gm));
  }
  const std::int64_t indep_prs_msgs =
      indep.trace().messages_in(sim::Category::kPrs);

  // One batched pack under the protocol validator.
  sim::Machine batched = make_machine(P);
  analysis::ProtocolValidator validator(batched);
  const plan::PackPlan p =
      plan::compile_pack_plan(batched, wls[0].d, sizeof(std::int64_t), opt);
  std::vector<dist::DistArray<mask_t>> masks;
  std::vector<dist::DistArray<std::int64_t>> arrays;
  for (std::size_t b = 0; b < B; ++b) {
    masks.push_back(wls[b].mask);
    arrays.push_back(wls[b].array);
  }
  auto results = plan::pack_batch<std::int64_t>(batched, p, masks, arrays);
  validator.finish();
  EXPECT_TRUE(validator.ok()) << validator.report();

  // Bit-identical packed vectors.
  ASSERT_EQ(results.size(), B);
  for (std::size_t b = 0; b < B; ++b) {
    EXPECT_EQ(results[b].vector.gather(), expected[b]) << "request " << b;
    EXPECT_EQ(results[b].size, static_cast<std::int64_t>(expected[b].size()));
  }

  // Acceptance criterion: with B >= 4 the batch charges at most half the
  // modeled tau startups (messages) of the B independent calls in the PRS
  // category.  Fusing makes it exactly 1/B here; assert the cover bound.
  const std::int64_t batch_prs_msgs =
      batched.trace().messages_in(sim::Category::kPrs);
  ASSERT_GT(indep_prs_msgs, 0);
  EXPECT_LE(2 * batch_prs_msgs, indep_prs_msgs)
      << "batch PRS startups " << batch_prs_msgs << " vs independent "
      << indep_prs_msgs;
  // The per-dimension round count is the single-call one, so the batch's
  // PRS startup count equals one independent call's.
  EXPECT_EQ(batch_prs_msgs * static_cast<std::int64_t>(B), indep_prs_msgs);

  // PRS *bytes* are conserved: fusing concatenates payloads, it does not
  // shrink or grow them.
  EXPECT_EQ(batched.trace().bytes_in(sim::Category::kPrs),
            indep.trace().bytes_in(sim::Category::kPrs));
}

TEST(PackBatch, SssSchemeAndMultiDimGrid) {
  // 2-D grid (two PRS dimensions) with the simple storage scheme: the
  // fused path must thread record_infos through and stay element-exact.
  const int P = 8;
  sim::Machine machine = make_machine(P);
  const dist::index_t rows = 64, cols = 64;
  auto d = dist::Distribution::block_cyclic(
      dist::Shape({rows, cols}), dist::ProcessGrid({4, 2}), 8);
  PackOptions opt;
  opt.scheme = PackScheme::kSimpleStorage;

  const std::size_t B = 3;
  std::vector<dist::DistArray<mask_t>> masks;
  std::vector<dist::DistArray<std::int64_t>> arrays;
  std::vector<std::vector<std::int64_t>> datas;
  std::vector<std::vector<mask_t>> gms;
  for (std::size_t b = 0; b < B; ++b) {
    std::vector<std::int64_t> data(static_cast<std::size_t>(rows * cols));
    std::iota(data.begin(), data.end(), static_cast<std::int64_t>(b) * 100000);
    auto gm = random_mask(rows * cols, 0.3 + 0.2 * static_cast<double>(b),
                          0x2d + b);
    arrays.push_back(dist::DistArray<std::int64_t>::scatter(d, data));
    masks.push_back(dist::DistArray<mask_t>::scatter(d, gm));
    datas.push_back(std::move(data));
    gms.push_back(std::move(gm));
  }

  const plan::PackPlan p =
      plan::compile_pack_plan(machine, d, sizeof(std::int64_t), opt);
  auto results = plan::pack_batch<std::int64_t>(machine, p, masks, arrays);
  for (std::size_t b = 0; b < B; ++b) {
    EXPECT_EQ(results[b].vector.gather(),
              serial_pack<std::int64_t>(datas[b], gms[b]))
        << "request " << b;
  }
}

TEST(PackBatch, BatchedExecutionIsDeterministic) {
  const int P = 8;
  const dist::index_t n = 2048;
  const std::size_t B = 4;
  PackOptions opt;
  opt.scheme = PackScheme::kCompactMessage;

  std::vector<PackWorkload> wls;
  for (std::size_t b = 0; b < B; ++b) {
    wls.push_back(make_workload(n, P, 16, 0.5, 0x7a + b));
  }
  const auto report = analysis::check_determinism(
      P, sim::CostModel{10.0, 0.1, 0.01}, [&](sim::Machine& machine) {
        const plan::PackPlan p = plan::compile_pack_plan(
            machine, wls[0].d, sizeof(std::int64_t), opt);
        std::vector<dist::DistArray<mask_t>> masks;
        std::vector<dist::DistArray<std::int64_t>> arrays;
        for (std::size_t b = 0; b < B; ++b) {
          masks.push_back(wls[b].mask);
          arrays.push_back(wls[b].array);
        }
        (void)plan::pack_batch<std::int64_t>(machine, p, masks, arrays);
      });
  EXPECT_TRUE(report.deterministic) << report.diff;
}

}  // namespace
}  // namespace pup
