// Tests for the preliminary cyclic-to-block redistribution PACK paths
// (Red1: selected data, Red2: whole arrays).
#include <gtest/gtest.h>

#include <numeric>

#include "core/api.hpp"

namespace pup {
namespace {

sim::Machine make_machine(int p) {
  return sim::Machine(p, sim::CostModel{10.0, 0.1, 0.01});
}

struct Case {
  std::vector<dist::index_t> extents;
  std::vector<int> procs;
  double density;
};

class RedSweep : public ::testing::TestWithParam<
                     std::tuple<Case, RedistributionScheme>> {};

TEST_P(RedSweep, MatchesDirectPack) {
  const auto& [c, scheme] = GetParam();
  int p = 1;
  for (int x : c.procs) p *= x;
  sim::Machine machine = make_machine(p);
  auto d = dist::Distribution::cyclic(dist::Shape(c.extents),
                                      dist::ProcessGrid(c.procs));
  const auto n = d.global().size();
  std::vector<std::int64_t> data(static_cast<std::size_t>(n));
  std::iota(data.begin(), data.end(), 0);
  auto gm = random_mask(n, c.density, 0xc0ffee);
  auto a = dist::DistArray<std::int64_t>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);

  auto direct = pack(machine, a, m);
  auto red = pack_with_redistribution(machine, a, m, scheme);
  EXPECT_EQ(red.size, direct.size);
  EXPECT_EQ(red.vector.gather(), direct.vector.gather());
  EXPECT_EQ(red.vector.gather(), serial_pack<std::int64_t>(data, gm));
  EXPECT_TRUE(machine.mailboxes_empty());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RedSweep,
    ::testing::Combine(
        ::testing::Values(Case{{32}, {4}, 0.1}, Case{{32}, {4}, 0.9},
                          Case{{64}, {8}, 0.5}, Case{{8, 8}, {2, 2}, 0.3},
                          Case{{16, 16}, {4, 4}, 0.7},
                          Case{{60}, {5}, 0.4}),
        ::testing::Values(RedistributionScheme::kSelectedData,
                          RedistributionScheme::kWholeArrays)));

TEST(PackRedistribution, WorksFromBlockCyclicToo) {
  // Not only pure-cyclic inputs benefit; any distribution is accepted.
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({32}),
                                            dist::ProcessGrid({4}), 2);
  std::vector<int> data(32);
  std::iota(data.begin(), data.end(), 0);
  auto gm = random_mask(32, 0.5, 4);
  auto a = dist::DistArray<int>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);
  auto red = pack_with_redistribution(machine, a, m,
                                      RedistributionScheme::kSelectedData);
  EXPECT_EQ(red.vector.gather(), serial_pack<int>(data, gm));
}

TEST(PackRedistribution, SelectedDataVolumeScalesWithDensity) {
  // Red1 ships only selected elements; Red2 ships everything.  At low
  // density Red1's redistribution traffic must be far smaller.
  auto traffic = [&](RedistributionScheme scheme, double density) {
    sim::Machine machine = make_machine(4);
    auto d = dist::Distribution::cyclic(dist::Shape({256}),
                                        dist::ProcessGrid({4}));
    std::vector<std::int64_t> data(256, 1);
    auto gm = random_mask(256, density, 12);
    auto a = dist::DistArray<std::int64_t>::scatter(d, data);
    auto m = dist::DistArray<mask_t>::scatter(d, gm);
    pack_with_redistribution(machine, a, m, scheme);
    return machine.trace().bytes_in(sim::Category::kRedist);
  };
  EXPECT_LT(traffic(RedistributionScheme::kSelectedData, 0.1),
            traffic(RedistributionScheme::kWholeArrays, 0.1));
  // Red2's traffic is density-insensitive.
  EXPECT_EQ(traffic(RedistributionScheme::kWholeArrays, 0.1),
            traffic(RedistributionScheme::kWholeArrays, 0.9));
}

TEST(PackRedistribution, ChargesRedistCategory) {
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::cyclic(dist::Shape({64}),
                                      dist::ProcessGrid({4}));
  std::vector<int> data(64, 1);
  auto gm = random_mask(64, 0.5, 5);
  auto a = dist::DistArray<int>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);
  pack_with_redistribution(machine, a, m,
                           RedistributionScheme::kWholeArrays);
  EXPECT_GT(machine.max_us(sim::Category::kRedist), 0.0);
}

}  // namespace
}  // namespace pup
