// Tests for the parallel ranking algorithm against a serial rank oracle.
//
// The oracle: for every true element at global linear index g, its rank is
// the number of true elements with smaller linear index.  The distributed
// ranking must agree for every element, for arbitrary rank/block-size/grid
// combinations, and Size must equal the global true count.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>

#include "core/ranking.hpp"
#include "core/mask.hpp"
#include "dist/dist_array.hpp"
#include "sim/machine.hpp"
#include "support/check.hpp"

namespace pup {
namespace {

sim::Machine make_machine(int p) {
  return sim::Machine(p, sim::CostModel{10.0, 0.1, 0.01});
}

/// Reconstructs every selected element's global rank from a RankingResult
/// by replaying the slice structure, and compares with the serial oracle.
void check_ranking(const dist::DistArray<mask_t>& mask,
                   const RankingResult& ranking,
                   const std::vector<mask_t>& global_mask) {
  const auto& dist = mask.dist();
  // Serial oracle: rank by global linear order.
  std::vector<std::int64_t> oracle(global_mask.size(), -1);
  std::int64_t next = 0;
  for (std::size_t g = 0; g < global_mask.size(); ++g) {
    if (global_mask[g]) oracle[g] = next++;
  }
  ASSERT_EQ(ranking.size, next);

  const dist::index_t W0 = ranking.slice_width;
  for (int rank = 0; rank < dist.nprocs(); ++rank) {
    const auto& pr = ranking.procs[static_cast<std::size_t>(rank)];
    const auto local = mask.local(rank);
    ASSERT_EQ(static_cast<dist::index_t>(pr.ps_f.size()), ranking.slices);
    std::int64_t packed_seen = 0;
    for (dist::index_t s = 0; s < ranking.slices; ++s) {
      std::int32_t found = 0;
      for (dist::index_t off = 0; off < W0; ++off) {
        const dist::index_t l = s * W0 + off;
        if (!local[static_cast<std::size_t>(l)]) continue;
        const std::int64_t r =
            pr.ps_f[static_cast<std::size_t>(s)] + found;
        ++found;
        ++packed_seen;
        // Map the local element back to its global linear index.
        const auto gidx = dist.global_of_local(rank, l);
        const auto g = dist.global().linear(gidx);
        EXPECT_EQ(r, oracle[static_cast<std::size_t>(g)])
            << "proc " << rank << " local " << l << " global " << g;
      }
      EXPECT_EQ(found, pr.counts[static_cast<std::size_t>(s)]);
    }
    EXPECT_EQ(packed_seen, pr.packed);
  }
}

struct Case {
  std::vector<dist::index_t> extents;
  std::vector<int> procs;
  std::vector<dist::index_t> blocks;
  double density;
};

class RankingSweep : public ::testing::TestWithParam<Case> {};

TEST_P(RankingSweep, MatchesSerialOracle) {
  const Case& c = GetParam();
  int p = 1;
  for (int x : c.procs) p *= x;
  sim::Machine machine = make_machine(p);
  auto d = dist::Distribution(dist::Shape(c.extents),
                              dist::ProcessGrid(c.procs), c.blocks);
  auto global_mask = random_mask(d.global().size(), c.density, 0xabcdef);
  auto mask = dist::DistArray<mask_t>::scatter(d, global_mask);
  for (auto prs : {coll::PrsAlgorithm::kDirect, coll::PrsAlgorithm::kSplit}) {
    RankingOptions opt;
    opt.prs = prs;
    auto ranking = rank_mask(machine, mask, opt);
    check_ranking(mask, ranking, global_mask);
    EXPECT_TRUE(machine.mailboxes_empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RankingSweep,
    ::testing::Values(
        // 1-D: cyclic, block-cyclic, block; pow2 and non-pow2 P.
        Case{{16}, {4}, {1}, 0.5},
        Case{{16}, {4}, {2}, 0.5},
        Case{{16}, {4}, {4}, 0.5},
        Case{{64}, {4}, {8}, 0.3},
        Case{{60}, {3}, {5}, 0.7},
        Case{{60}, {5}, {2}, 0.4},
        Case{{128}, {8}, {4}, 0.9},
        Case{{128}, {1}, {16}, 0.5},
        // 2-D: mixed block sizes per dimension.
        Case{{8, 8}, {2, 2}, {2, 2}, 0.5},
        Case{{8, 8}, {2, 2}, {1, 4}, 0.5},
        Case{{16, 8}, {4, 2}, {2, 1}, 0.3},
        Case{{12, 18}, {3, 3}, {2, 3}, 0.6},
        Case{{32, 16}, {4, 4}, {4, 2}, 0.1},
        Case{{16, 16}, {2, 4}, {8, 2}, 0.95},
        // 3-D.
        Case{{8, 6, 4}, {2, 3, 2}, {2, 1, 2}, 0.5},
        Case{{4, 4, 4}, {2, 2, 1}, {1, 1, 4}, 0.4},
        Case{{8, 8, 8}, {2, 2, 2}, {2, 2, 2}, 0.2},
        // 4-D, exercising deep recursion of the intermediate steps.
        Case{{4, 4, 4, 4}, {2, 2, 1, 2}, {1, 2, 4, 1}, 0.5}));

TEST(Ranking, AllTrueGivesLinearRanks) {
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({8, 4}),
                                            dist::ProcessGrid({2, 2}), 2);
  std::vector<mask_t> all_true(32, 1);
  auto mask = dist::DistArray<mask_t>::scatter(d, all_true);
  auto ranking = rank_mask(machine, mask);
  EXPECT_EQ(ranking.size, 32);
  check_ranking(mask, ranking, all_true);
}

TEST(Ranking, AllFalseGivesSizeZero) {
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({16}),
                                            dist::ProcessGrid({4}), 2);
  std::vector<mask_t> none(16, 0);
  auto mask = dist::DistArray<mask_t>::scatter(d, none);
  auto ranking = rank_mask(machine, mask);
  EXPECT_EQ(ranking.size, 0);
  for (const auto& pr : ranking.procs) EXPECT_EQ(pr.packed, 0);
}

TEST(Ranking, SingleTrueElementEverywhere) {
  // Sweep the position of a single true element across the whole array.
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({4, 4}),
                                            dist::ProcessGrid({2, 2}), 1);
  for (dist::index_t g = 0; g < 16; ++g) {
    std::vector<mask_t> one(16, 0);
    one[static_cast<std::size_t>(g)] = 1;
    auto mask = dist::DistArray<mask_t>::scatter(d, one);
    auto ranking = rank_mask(machine, mask);
    EXPECT_EQ(ranking.size, 1) << "g=" << g;
    check_ranking(mask, ranking, one);
  }
}

TEST(Ranking, InfosRecordedOnlyWhenRequested) {
  sim::Machine machine = make_machine(2);
  auto d = dist::Distribution::block_cyclic(dist::Shape({8}),
                                            dist::ProcessGrid({2}), 2);
  auto gm = random_mask(8, 0.5, 1);
  auto mask = dist::DistArray<mask_t>::scatter(d, gm);
  RankingOptions with, without;
  with.record_infos = true;
  without.record_infos = false;
  auto r1 = rank_mask(machine, mask, with);
  auto r2 = rank_mask(machine, mask, without);
  const int stride = sss_info_stride(1);
  for (int rank = 0; rank < 2; ++rank) {
    EXPECT_EQ(static_cast<std::int64_t>(
                  r1.procs[static_cast<std::size_t>(rank)].info_words.size()),
              r1.procs[static_cast<std::size_t>(rank)].packed * stride);
    EXPECT_TRUE(r2.procs[static_cast<std::size_t>(rank)].info_words.empty());
  }
}

TEST(Ranking, LtMask2D) {
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({8, 8}),
                                            dist::ProcessGrid({2, 2}), 2);
  auto gm = lt_mask(d.global());
  auto mask = dist::DistArray<mask_t>::scatter(d, gm);
  auto ranking = rank_mask(machine, mask);
  // Strictly-above-diagonal count for an 8x8: 8*7/2.
  EXPECT_EQ(ranking.size, 28);
  check_ranking(mask, ranking, gm);
}

TEST(Ranking, Ragged1DIsSupported) {
  // The paper assumes divisibility; the 1-D case is supported as an
  // extension (see ragged_1d_test.cpp for the full sweep).
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({10}),
                                            dist::ProcessGrid({4}), 2);
  auto gm = random_mask(10, 0.5, 3);
  auto mask = dist::DistArray<mask_t>::scatter(d, gm);
  auto ranking = rank_mask(machine, mask);
  EXPECT_EQ(ranking.size, count_true(gm));
}

TEST(Ranking, RejectsNonDivisibleMultiDimensional) {
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({10, 8}),
                                            dist::ProcessGrid({2, 2}), 2);
  dist::DistArray<mask_t> mask(d);
  EXPECT_THROW(rank_mask(machine, mask), ContractError);
}

TEST(Ranking, RejectsGridMachineMismatch) {
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({8}),
                                            dist::ProcessGrid({2}), 2);
  dist::DistArray<mask_t> mask(d);
  EXPECT_THROW(rank_mask(machine, mask), ContractError);
}

TEST(Ranking, CheckedSliceCountGuardsInt32Boundary) {
  // Slice populations and SSS init ranks are stored as int32 while global
  // ranks are int64; the narrowing helper must pass everything up to
  // INT32_MAX and reject the first value beyond it (and negatives), so an
  // oversized slice fails loudly instead of truncating.
  constexpr std::int64_t kMax = std::numeric_limits<std::int32_t>::max();
  EXPECT_EQ(checked_slice_count(0), 0);
  EXPECT_EQ(checked_slice_count(kMax), std::numeric_limits<std::int32_t>::max());
  EXPECT_THROW(checked_slice_count(kMax + 1), ContractError);
  EXPECT_THROW(checked_slice_count(std::int64_t{1} << 40), ContractError);
  EXPECT_THROW(checked_slice_count(-1), ContractError);
}

TEST(Ranking, RejectsLocalExtentBeyondInt32) {
  // The up-front geometry guard rejects a distribution whose per-processor
  // bound T_0 * W_0 cannot be indexed by the int32 record fields.  A ragged
  // 1-D layout keeps the test cheap: extent 100 with a 2^31 + 2 block gives
  // one (mostly-missing) tile whose bound overflows int32, while the actual
  // local allocations stay tiny -- rank_mask must throw on geometry before
  // touching any mask data.
  const std::int64_t big = (std::int64_t{1} << 31) + 2;
  sim::Machine machine = make_machine(2);
  auto d = dist::Distribution::block_cyclic(dist::Shape({100}),
                                            dist::ProcessGrid({2}), big);
  dist::DistArray<mask_t> mask(d);
  EXPECT_THROW(rank_mask(machine, mask), ContractError);
}

TEST(Ranking, SizeAgreesWithMaskCount) {
  sim::Machine machine = make_machine(8);
  auto d = dist::Distribution::block_cyclic(dist::Shape({16, 16}),
                                            dist::ProcessGrid({4, 2}), 2);
  for (double density : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    auto gm = random_mask(256, density, 77);
    auto mask = dist::DistArray<mask_t>::scatter(d, gm);
    auto ranking = rank_mask(machine, mask);
    EXPECT_EQ(ranking.size, count_true(gm));
  }
}

}  // namespace
}  // namespace pup
