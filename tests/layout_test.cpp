// Unit tests for Shape: row-major (dimension-0-fastest) indexing.
#include <gtest/gtest.h>

#include "dist/layout.hpp"
#include "support/check.hpp"

namespace pup::dist {
namespace {

TEST(Shape, RankAndExtents) {
  Shape s({4, 3, 2});  // N_0=4, N_1=3, N_2=2
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.extent(0), 4);
  EXPECT_EQ(s.extent(1), 3);
  EXPECT_EQ(s.extent(2), 2);
  EXPECT_EQ(s.size(), 24);
}

TEST(Shape, StridesAreDimensionZeroFastest) {
  Shape s({4, 3, 2});
  EXPECT_EQ(s.stride(0), 1);
  EXPECT_EQ(s.stride(1), 4);
  EXPECT_EQ(s.stride(2), 12);
}

TEST(Shape, LinearMatchesPaperRankFormula) {
  // rank = sum_k i_k * prod_{j<k} N_j.
  Shape s({5, 7});
  const index_t idx[] = {3, 2};
  EXPECT_EQ(s.linear(idx), 3 + 2 * 5);
}

TEST(Shape, MultiInvertsLinear) {
  Shape s({4, 3, 2});
  for (index_t lin = 0; lin < s.size(); ++lin) {
    auto idx = s.multi(lin);
    EXPECT_EQ(s.linear(idx), lin);
  }
}

TEST(Shape, RankZeroIsScalar) {
  Shape s(std::vector<index_t>{});
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.size(), 1);
}

TEST(Shape, ZeroExtentGivesEmpty) {
  Shape s({0});
  EXPECT_EQ(s.size(), 0);
}

TEST(Shape, NegativeExtentThrows) {
  EXPECT_THROW(Shape({-1}), ContractError);
}

TEST(Shape, NextIndexWalksLinearOrder) {
  Shape s({3, 2});
  std::vector<index_t> idx(2, 0);
  for (index_t lin = 0; lin < s.size(); ++lin) {
    EXPECT_EQ(s.linear(idx), lin);
    const bool more = next_index(s, idx);
    EXPECT_EQ(more, lin + 1 < s.size());
  }
}

TEST(Shape, EqualityComparesExtents) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_FALSE(Shape({2, 3}) == Shape({3, 2}));
}

}  // namespace
}  // namespace pup::dist
