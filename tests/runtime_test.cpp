// Tests for the high-level Runtime facade and the mask reductions.
#include <gtest/gtest.h>

#include <numeric>

#include "core/api.hpp"

namespace pup {
namespace {

TEST(MaskReductions, CountMatchesHostCount) {
  sim::Machine machine(8, sim::CostModel{10, 0.1, 0.01});
  auto d = dist::Distribution::block_cyclic(dist::Shape({16, 8}),
                                            dist::ProcessGrid({4, 2}), 2);
  for (double density : {0.0, 0.25, 0.8, 1.0}) {
    auto gm = random_mask(128, density, 11);
    auto m = dist::DistArray<mask_t>::scatter(d, gm);
    EXPECT_EQ(count(machine, m), count_true(gm));
  }
}

TEST(MaskReductions, AnyAndAll) {
  sim::Machine machine(4, sim::CostModel{10, 0.1, 0.01});
  auto d = dist::Distribution::block_cyclic(dist::Shape({16}),
                                            dist::ProcessGrid({4}), 2);
  std::vector<mask_t> none(16, 0), ones(16, 1), mixed(16, 0);
  mixed[9] = 1;
  EXPECT_FALSE(any(machine, dist::DistArray<mask_t>::scatter(d, none)));
  EXPECT_TRUE(any(machine, dist::DistArray<mask_t>::scatter(d, mixed)));
  EXPECT_TRUE(all(machine, dist::DistArray<mask_t>::scatter(d, ones)));
  EXPECT_FALSE(all(machine, dist::DistArray<mask_t>::scatter(d, mixed)));
}

TEST(MaskReductions, CountChargesPrsCategory) {
  sim::Machine machine(4, sim::CostModel{10, 0.1, 0.01});
  auto d = dist::Distribution::block_cyclic(dist::Shape({16}),
                                            dist::ProcessGrid({4}), 2);
  auto m = dist::DistArray<mask_t>::scatter(d, random_mask(16, 0.5, 3));
  machine.reset_accounting();
  (void)count(machine, m);
  EXPECT_GT(machine.max_us(sim::Category::kPrs), 0.0);
}

TEST(Runtime, EndToEndPackUnpack) {
  Runtime rt(16, sim::CostModel{10, 0.1, 0.01});
  std::vector<double> host(256);
  std::iota(host.begin(), host.end(), 0.0);
  auto a = rt.distribute<double>(host, {256}, {16}, {4});
  auto gm = random_mask(256, 0.5, 5);
  auto m = rt.distribute<mask_t>(gm, {256}, {16}, {4});

  auto packed = rt.pack(a, m);
  EXPECT_EQ(packed.size, rt.count(m));
  EXPECT_EQ(packed.vector.gather(), serial_pack<double>(host, gm));

  auto restored = rt.unpack(packed.vector, m, a);
  EXPECT_EQ(restored.result.gather(), host);
}

TEST(Runtime, AutoSchemeRespectsCyclicRule) {
  // The Section 6.4 selector must pick SSS for cyclic layouts.
  Runtime rt(8, sim::CostModel{10, 0.1, 0.01});
  std::vector<int> host(128, 1);
  auto a = rt.distribute<int>(host, {128}, {8}, {1});
  auto gm = random_mask(128, 0.9, 6);
  auto m = rt.distribute<mask_t>(gm, {128}, {8}, {1});
  auto packed = rt.pack(a, m);
  EXPECT_EQ(packed.scheme, PackScheme::kSimpleStorage);
  EXPECT_EQ(packed.vector.gather(), serial_pack<int>(host, gm));
}

TEST(Runtime, AutoSchemePrefersCompactForDenseBlock) {
  Runtime rt(8, sim::CostModel{10, 0.1, 0.01});
  std::vector<int> host(1024, 1);
  auto a = rt.distribute<int>(host, {1024}, {8}, {128});
  auto gm = random_mask(1024, 0.9, 6);
  auto m = rt.distribute<mask_t>(gm, {1024}, {8}, {128});
  auto packed = rt.pack(a, m);
  EXPECT_NE(packed.scheme, PackScheme::kSimpleStorage);
  EXPECT_EQ(packed.vector.gather(), serial_pack<int>(host, gm));
}

TEST(Runtime, PackViaRedistribution) {
  Runtime rt(4, sim::CostModel{10, 0.1, 0.01});
  std::vector<int> host(64);
  std::iota(host.begin(), host.end(), 0);
  auto a = rt.distribute<int>(host, {64}, {4}, {1});
  auto gm = random_mask(64, 0.3, 9);
  auto m = rt.distribute<mask_t>(gm, {64}, {4}, {1});
  auto packed =
      rt.pack_via_redistribution(a, m, RedistributionScheme::kSelectedData);
  EXPECT_EQ(packed.vector.gather(), serial_pack<int>(host, gm));
}

TEST(Runtime, PackWithVectorPadding) {
  Runtime rt(4, sim::CostModel{10, 0.1, 0.01});
  std::vector<int> host(32);
  std::iota(host.begin(), host.end(), 0);
  auto a = rt.distribute<int>(host, {32}, {4}, {2});
  auto gm = random_mask(32, 0.25, 2);
  auto m = rt.distribute<mask_t>(gm, {32}, {4}, {2});
  std::vector<int> pad(20, -1);
  auto v = dist::DistArray<int>::scatter(dist::Distribution::block1d(20, 4),
                                         pad);
  auto packed = rt.pack(a, m, v);
  EXPECT_EQ(packed.vector.gather(), serial_pack<int>(host, gm, pad));
}

TEST(Runtime, IntrinsicsFamilyThroughFacade) {
  Runtime rt(4, sim::CostModel{10, 0.1, 0.01});
  std::vector<int> t(16), f(16, -1);
  std::iota(t.begin(), t.end(), 0);
  auto ta = rt.distribute<int>(t, {16}, {4}, {2});
  auto fa = rt.distribute<int>(f, {16}, {4}, {2});
  auto gm = random_mask(16, 0.5, 13);
  auto m = rt.distribute<mask_t>(gm, {16}, {4}, {2});

  auto merged = rt.merge(ta, fa, m).gather();
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(merged[i], gm[i] ? t[i] : -1);
  }
  auto shifted = rt.cshift(ta, 0, 3).gather();
  EXPECT_EQ(shifted[0], t[3]);
  auto eo = rt.eoshift(ta, 0, 20, -5).gather();
  EXPECT_EQ(eo[0], -5);
  EXPECT_EQ(rt.sum(ta), 120);
  EXPECT_EQ(rt.maxval(ta), 15);
  EXPECT_EQ(rt.minval(ta), 0);

  std::vector<int> mat(16);
  std::iota(mat.begin(), mat.end(), 0);
  auto ma =
      rt.distribute<int>(mat, {4, 4}, {2, 2}, {2, 2});
  auto tr = rt.transpose(ma).gather();
  // Element (i0=1, i1=0) of the transpose is element (0, 1) of the source.
  EXPECT_EQ(tr[1], mat[4]);
}

TEST(Runtime, AccountingAccessors) {
  Runtime rt(4, sim::CostModel{10, 0.1, 0.01});
  std::vector<int> host(32, 1);
  auto a = rt.distribute<int>(host, {32}, {4}, {2});
  auto m = rt.distribute<mask_t>(random_mask(32, 0.5, 1), {32}, {4}, {2});
  (void)rt.pack(a, m);
  EXPECT_GT(rt.max_total_us(), 0.0);
  rt.reset_accounting();
  EXPECT_DOUBLE_EQ(rt.max_total_us(), 0.0);
}

}  // namespace
}  // namespace pup
