// Tests for mask generation and the serial F90 reference semantics.
#include <gtest/gtest.h>

#include <numeric>

#include "core/mask.hpp"
#include "core/serial_reference.hpp"
#include "support/check.hpp"

namespace pup {
namespace {

TEST(Mask, RandomDensityIsApproximatelyRespected) {
  for (double density : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    auto m = random_mask(100000, density, 42);
    EXPECT_NEAR(measured_density(m), density, 0.01) << density;
  }
}

TEST(Mask, RandomIsDeterministicPerSeed) {
  EXPECT_EQ(random_mask(100, 0.5, 7), random_mask(100, 0.5, 7));
  EXPECT_NE(random_mask(100, 0.5, 7), random_mask(100, 0.5, 8));
}

TEST(Mask, DensityExtremes) {
  auto zero = random_mask(100, 0.0, 1);
  auto one = random_mask(100, 1.0, 1);
  EXPECT_EQ(count_true(zero), 0);
  EXPECT_EQ(count_true(one), 100);
}

TEST(Mask, Lt1DHalfTrue) {
  auto m = lt_mask_1d(16);
  EXPECT_EQ(count_true(m), 8);
  EXPECT_EQ(m[7], 1);
  EXPECT_EQ(m[8], 0);
}

TEST(Mask, Lt2DStrictlyAboveDiagonal) {
  // true iff index on dimension 1 > index on dimension 0; with dim 0
  // fastest, linear index g = i0 + N0*i1.
  dist::Shape s({4, 4});
  auto m = lt_mask(s);
  EXPECT_EQ(count_true(m), 6);  // 4*3/2
  EXPECT_EQ(m[0], 0);           // (0,0)
  EXPECT_EQ(m[4], 1);           // i0=0, i1=1
  EXPECT_EQ(m[1], 0);           // i0=1, i1=0
}

TEST(Mask, LtRequiresRank2) {
  EXPECT_THROW(lt_mask(dist::Shape({4})), ContractError);
}

TEST(Mask, BadDensityThrows) {
  EXPECT_THROW(random_mask(10, -0.1, 1), ContractError);
  EXPECT_THROW(random_mask(10, 1.1, 1), ContractError);
}

TEST(SerialReference, PackSelectsInElementOrder) {
  std::vector<int> a = {1, 2, 3, 4, 5};
  std::vector<mask_t> m = {1, 0, 1, 0, 1};
  EXPECT_EQ(serial_pack<int>(a, m), (std::vector<int>{1, 3, 5}));
}

TEST(SerialReference, PackWithVectorPads) {
  std::vector<int> a = {1, 2, 3};
  std::vector<mask_t> m = {0, 1, 0};
  std::vector<int> vec = {-1, -2, -3, -4};
  EXPECT_EQ(serial_pack<int>(a, m, vec), (std::vector<int>{2, -2, -3, -4}));
}

TEST(SerialReference, PackVectorTooShortThrows) {
  std::vector<int> a = {1, 2};
  std::vector<mask_t> m = {1, 1};
  std::vector<int> vec = {9};
  EXPECT_THROW(serial_pack<int>(a, m, vec), ContractError);
}

TEST(SerialReference, UnpackScattersAndFieldFills) {
  std::vector<int> v = {10, 20};
  std::vector<mask_t> m = {0, 1, 0, 1};
  std::vector<int> f = {1, 2, 3, 4};
  EXPECT_EQ(serial_unpack<int>(v, m, f), (std::vector<int>{1, 10, 3, 20}));
}

TEST(SerialReference, UnpackVectorTooShortThrows) {
  std::vector<int> v = {10};
  std::vector<mask_t> m = {1, 1};
  std::vector<int> f = {0, 0};
  EXPECT_THROW(serial_unpack<int>(v, m, f), ContractError);
}

TEST(SerialReference, PackUnpackRoundTrip) {
  std::vector<int> a(64);
  std::iota(a.begin(), a.end(), 0);
  auto m = random_mask(64, 0.5, 3);
  auto v = serial_pack<int>(a, m);
  auto back = serial_unpack<int>(v, m, a);
  EXPECT_EQ(back, a);
}

TEST(SerialReference, MaskMismatchThrows) {
  std::vector<int> a = {1, 2, 3};
  std::vector<mask_t> m = {1, 1};
  EXPECT_THROW(serial_pack<int>(a, m), ContractError);
}

}  // namespace
}  // namespace pup
