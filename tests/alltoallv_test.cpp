// Tests for many-to-many personalized communication: correctness under both
// schedules, self-bypass behaviour, and modeled-cost properties.
#include <gtest/gtest.h>

#include <cstdint>

#include "coll/alltoallv.hpp"
#include "sim/machine.hpp"

namespace pup::coll {
namespace {

sim::Machine make_machine(int p) {
  return sim::Machine(p, sim::CostModel{10.0, 0.1, 0.01});
}

std::vector<std::vector<std::vector<int>>> make_send(int p) {
  // send[i][j] = {i*100+j, i*100+j, ... (j+1 copies)} so sizes differ.
  std::vector<std::vector<std::vector<int>>> send(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    send[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(p));
    for (int j = 0; j < p; ++j) {
      send[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)].assign(
          static_cast<std::size_t>(j + 1), i * 100 + j);
    }
  }
  return send;
}

class AlltoallvTest : public ::testing::TestWithParam<
                          std::tuple<int, M2MSchedule>> {};

TEST_P(AlltoallvTest, DeliversEverythingToTheRightPlace) {
  const auto [p, sched] = GetParam();
  sim::Machine m = make_machine(p);
  auto recv = alltoallv_typed<int>(m, Group::world(p), make_send(p), sched);
  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < p; ++j) {
      const auto& got =
          recv[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      ASSERT_EQ(got.size(), static_cast<std::size_t>(i + 1))
          << "i=" << i << " j=" << j;
      for (int v : got) EXPECT_EQ(v, j * 100 + i);
    }
  }
  EXPECT_TRUE(m.mailboxes_empty());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlltoallvTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values(M2MSchedule::kLinearPermutation,
                                         M2MSchedule::kNaive)));

TEST(Alltoallv, SelfMessagesBypassTheNetwork) {
  const int p = 4;
  sim::Machine m = make_machine(p);
  // Only self-messages.
  std::vector<std::vector<std::vector<int>>> send(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    send[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(p));
    send[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = {i, i};
  }
  auto recv = alltoallv_typed<int>(m, Group::world(p), std::move(send));
  for (int i = 0; i < p; ++i) {
    EXPECT_EQ(
        (recv[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)]),
        (std::vector<int>{i, i}));
  }
  EXPECT_EQ(m.trace().messages(), 0);
  EXPECT_EQ(m.trace().self_bytes(), p * 2 * 4);
  EXPECT_DOUBLE_EQ(m.max_us(sim::Category::kM2M), 0.0);
}

TEST(Alltoallv, EmptyPayloadsCostNothing) {
  const int p = 6;
  sim::Machine m = make_machine(p);
  std::vector<std::vector<std::vector<int>>> send(static_cast<std::size_t>(p));
  for (auto& row : send) row.resize(static_cast<std::size_t>(p));
  auto recv = alltoallv_typed<int>(m, Group::world(p), std::move(send));
  EXPECT_EQ(m.trace().messages(), 0);
  EXPECT_DOUBLE_EQ(m.max_us(sim::Category::kM2M), 0.0);
  for (const auto& row : recv) {
    for (const auto& v : row) EXPECT_TRUE(v.empty());
  }
}

TEST(Alltoallv, LinearPermutationCheaperThanNaiveOnFullExchange) {
  // With every pair exchanging equal-size messages, the synchronized
  // permutation schedule overlaps each member's send and receive, so its
  // modeled time is about half the naive schedule's.
  const int p = 8;
  sim::Machine ml = make_machine(p);
  sim::Machine mn = make_machine(p);
  auto full = [&] {
    std::vector<std::vector<std::vector<int>>> send(
        static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
      send[static_cast<std::size_t>(i)].assign(static_cast<std::size_t>(p),
                                               std::vector<int>(64, i));
    }
    return send;
  };
  alltoallv_typed<int>(ml, Group::world(p), full(),
                       M2MSchedule::kLinearPermutation);
  alltoallv_typed<int>(mn, Group::world(p), full(), M2MSchedule::kNaive);
  EXPECT_LT(ml.max_us(sim::Category::kM2M), mn.max_us(sim::Category::kM2M));
}

TEST(Alltoallv, ChargesRequestedCategory) {
  const int p = 2;
  sim::Machine m = make_machine(p);
  std::vector<std::vector<std::vector<int>>> send(static_cast<std::size_t>(p));
  for (auto& row : send) row.resize(static_cast<std::size_t>(p));
  send[0][1] = {1, 2, 3};
  alltoallv_typed<int>(m, Group::world(p), std::move(send),
                       M2MSchedule::kLinearPermutation,
                       sim::Category::kRedist);
  EXPECT_GT(m.max_us(sim::Category::kRedist), 0.0);
  EXPECT_DOUBLE_EQ(m.max_us(sim::Category::kM2M), 0.0);
}

TEST(Alltoallv, WrongBufferShapeThrows) {
  sim::Machine m = make_machine(3);
  ByteBuffers bad(2);
  EXPECT_THROW(alltoallv(m, Group::world(3), std::move(bad)),
               pup::ContractError);
}

}  // namespace
}  // namespace pup::coll
