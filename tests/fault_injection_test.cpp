// Deterministic fault injection at the transport boundary (sim/fault.hpp):
//   * PUP_FAULTS grammar -- multi-rule specs, hex tags, scoping fields;
//     malformed specs fail loudly with ContractError;
//   * each action's observable effect at the mailbox (drop vanishes,
//     duplicate delivers a flagged second copy, delay holds for N receive
//     ticks, truncate halves the payload and records the original size);
//   * rule scoping by src/dst/tag and by open annotation scope;
//   * bit-for-bit schedule reproducibility for a fixed seed;
//   * paired fault.* annotations reaching the MachineObserver.
//
// Every machine here installs its fault plan explicitly (or none), so the
// tests are immune to the PUP_FAULTS environment the ctest fault matrix
// exports.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "sim/fault.hpp"
#include "sim/instrumentation.hpp"
#include "sim/machine.hpp"
#include "support/env.hpp"
#include "support/check.hpp"

namespace pup {
namespace {

// Every test installs its plan explicitly right after construction, which
// also shields the machines from the ctest PUP_FAULTS matrix environment.
sim::Machine make_machine(int p) {
  return sim::Machine(p, sim::CostModel{10.0, 0.1, 0.01});
}

sim::Message make_message(int src, int dst, int tag, std::size_t n_words) {
  std::vector<std::int64_t> words(n_words);
  std::iota(words.begin(), words.end(), 1);
  return sim::Message{src, dst, tag,
                      sim::to_payload<std::int64_t>(
                          std::span<const std::int64_t>(words))};
}

/// Saves and restores PUP_FAULTS around env-sensitive tests so the fault
/// matrix's setting survives.
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* name) : name_(name) {
    const char* v = std::getenv(name);
    if (v != nullptr) saved_ = v;
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
    support::Env::refresh();
  }

  static void set(const char* name, const char* value) {
    ::setenv(name, value, 1);
    support::Env::refresh();
  }
  static void unset(const char* name) {
    ::unsetenv(name);
    support::Env::refresh();
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(FaultPlan, ParsesMultiRuleSpecsWithScoping) {
  auto plan = sim::FaultPlan::parse(
      "seed=42 drop=0.25 dup=0.25, delay=0.25 ticks=2 trunc=0.25"
      " | drop=0.5 src=1 dst=2 tag=0xa2a phase=alltoallv");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->seed(), 42u);
  ASSERT_EQ(plan->rules().size(), 2u);

  const sim::FaultRule& r0 = plan->rules()[0];
  EXPECT_DOUBLE_EQ(r0.drop, 0.25);
  EXPECT_DOUBLE_EQ(r0.duplicate, 0.25);
  EXPECT_DOUBLE_EQ(r0.delay, 0.25);
  EXPECT_DOUBLE_EQ(r0.truncate, 0.25);
  EXPECT_EQ(r0.delay_ticks, 2);
  EXPECT_EQ(r0.src, -1);
  EXPECT_EQ(r0.tag, -1);

  const sim::FaultRule& r1 = plan->rules()[1];
  EXPECT_DOUBLE_EQ(r1.drop, 0.5);
  EXPECT_EQ(r1.src, 1);
  EXPECT_EQ(r1.dst, 2);
  EXPECT_EQ(r1.tag, 0xa2a);  // hex accepted
  EXPECT_EQ(r1.phase, "alltoallv");
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(sim::FaultPlan::parse(""), ContractError);
  EXPECT_THROW(sim::FaultPlan::parse("bogus=1"), ContractError);
  EXPECT_THROW(sim::FaultPlan::parse("drop"), ContractError);
  EXPECT_THROW(sim::FaultPlan::parse("drop=abc"), ContractError);
  EXPECT_THROW(sim::FaultPlan::parse("drop=2.0"), ContractError);
  EXPECT_THROW(sim::FaultPlan::parse("drop=-0.1"), ContractError);
  EXPECT_THROW(sim::FaultPlan::parse("drop=0.7 dup=0.6"), ContractError);
  EXPECT_THROW(sim::FaultPlan::parse("drop=0.5 ticks=0"), ContractError);
  // A spec whose every rule has zero total probability injects nothing;
  // that is a misconfigured experiment, not a valid plan.
  EXPECT_THROW(sim::FaultPlan::parse("drop=0.0"), ContractError);
}

TEST(FaultPlan, FromEnvReadsPupFaults) {
  ScopedEnv guard("PUP_FAULTS");
  ScopedEnv::set("PUP_FAULTS", "seed=5 drop=1.0");
  auto plan = sim::FaultPlan::from_env();
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->seed(), 5u);

  ScopedEnv::unset("PUP_FAULTS");
  EXPECT_EQ(sim::FaultPlan::from_env(), nullptr);
  ScopedEnv::set("PUP_FAULTS", "");
  EXPECT_EQ(sim::FaultPlan::from_env(), nullptr);
}

TEST(FaultInjection, DropVanishesWithoutTraceOrDelivery) {
  sim::Machine m = make_machine(2);
  m.set_fault_plan(sim::FaultPlan::parse("seed=1 drop=1.0"));
  m.post(make_message(0, 1, 7, 8), sim::Category::kM2M);

  EXPECT_FALSE(m.has_message(1));
  EXPECT_TRUE(m.mailboxes_empty());
  EXPECT_EQ(m.trace().messages(), 0);  // a dropped frame is never traced
  EXPECT_EQ(m.fault_plan()->stats().drops, 1);
  EXPECT_EQ(m.fault_plan()->stats().decisions, 1);
}

TEST(FaultInjection, DuplicateDeliversFlaggedSecondCopy) {
  sim::Machine m = make_machine(2);
  m.set_fault_plan(sim::FaultPlan::parse("seed=1 dup=1.0"));
  m.post(make_message(0, 1, 7, 8), sim::Category::kM2M);

  auto first = m.receive(1, 0, 7);
  auto second = m.receive(1, 0, 7);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(first->wire.duplicate);
  EXPECT_TRUE(second->wire.duplicate);
  EXPECT_EQ(first->payload, second->payload);
  EXPECT_FALSE(m.receive(1, 0, 7).has_value());
  EXPECT_EQ(m.fault_plan()->stats().duplicates, 1);
}

TEST(FaultInjection, DelayHoldsForReceiveTicks) {
  sim::Machine m = make_machine(2);
  m.set_fault_plan(sim::FaultPlan::parse("seed=1 delay=1.0 ticks=2"));
  m.post(make_message(0, 1, 7, 8), sim::Category::kM2M);

  // The frame is traced at post time but parked in the network.
  EXPECT_EQ(m.trace().messages(), 1);
  EXPECT_FALSE(m.mailboxes_empty());

  EXPECT_FALSE(m.receive(1, 0, 7).has_value());  // tick 1 of 2
  auto msg = m.receive(1, 0, 7);                 // tick 2 releases it
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->wire.delayed);
  EXPECT_TRUE(m.mailboxes_empty());
  EXPECT_EQ(m.fault_plan()->stats().delays, 1);
}

TEST(FaultInjection, FlushDelayedReleasesImmediately) {
  sim::Machine m = make_machine(2);
  m.set_fault_plan(sim::FaultPlan::parse("seed=1 delay=1.0 ticks=100"));
  m.post(make_message(0, 1, 7, 8), sim::Category::kM2M);

  EXPECT_FALSE(m.has_message(1));
  m.flush_delayed();
  EXPECT_TRUE(m.has_message(1, 0, 7));
}

TEST(FaultInjection, TruncateHalvesPayloadAndRecordsOriginal) {
  sim::Machine m = make_machine(2);
  m.set_fault_plan(sim::FaultPlan::parse("seed=1 trunc=1.0"));
  sim::Message sent = make_message(0, 1, 7, 8);  // 64 payload bytes
  const std::uint64_t full_checksum = sim::payload_checksum(sent.payload);
  m.post(std::move(sent), sim::Category::kM2M);

  sim::Message got = m.receive_required(1, 0, 7);
  EXPECT_TRUE(got.wire.truncated);
  EXPECT_EQ(got.payload.size(), 32u);
  EXPECT_EQ(got.wire.orig_bytes, 64u);
  EXPECT_NE(sim::payload_checksum(got.payload), full_checksum);
  EXPECT_EQ(m.fault_plan()->stats().truncations, 1);
}

TEST(FaultInjection, RulesScopeBySrcTagAndOpenPhase) {
  sim::Machine m = make_machine(4);
  m.set_fault_plan(
      sim::FaultPlan::parse("seed=3 drop=1.0 src=0 tag=0x42c phase=bcast"));

  // Wrong source, wrong tag, or no open bcast scope: delivered untouched.
  m.post(make_message(1, 2, 0x42c, 4), sim::Category::kM2M);
  m.post(make_message(0, 2, 0x999, 4), sim::Category::kM2M);
  m.post(make_message(0, 2, 0x42c, 4), sim::Category::kM2M);
  EXPECT_EQ(m.fault_plan()->stats().decisions, 0);
  EXPECT_TRUE(m.receive(2, 1, 0x42c).has_value());
  EXPECT_TRUE(m.receive(2, 0, 0x999).has_value());
  EXPECT_TRUE(m.receive(2, 0, 0x42c).has_value());

  {
    // Substring match against the innermost-to-outermost open scopes.
    sim::PhaseScope scope(m, "bcast.binomial");
    m.post(make_message(0, 2, 0x42c, 4), sim::Category::kM2M);
  }
  EXPECT_EQ(m.fault_plan()->stats().decisions, 1);
  EXPECT_EQ(m.fault_plan()->stats().drops, 1);
  EXPECT_FALSE(m.has_message(2));
}

TEST(FaultInjection, SameSeedReproducesTheSchedule) {
  auto run = [](std::uint64_t seed) {
    sim::Machine m = make_machine(2);
    m.set_fault_plan(sim::FaultPlan::parse("seed=" + std::to_string(seed) +
                                           " drop=0.5"));
    std::vector<bool> delivered;
    for (int i = 0; i < 64; ++i) {
      m.post(make_message(0, 1, i, 2), sim::Category::kM2M);
      delivered.push_back(m.receive(1, 0, i).has_value());
    }
    return delivered;
  };
  const auto a = run(9);
  const auto b = run(9);
  const auto c = run(10);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to coincide over 64 draws
}

TEST(FaultInjection, InjectionEventsAnnotateTheObserver) {
  struct EventCounter final : sim::MachineObserver {
    std::vector<std::string> begins;
    std::int64_t ends = 0;
    void on_phase_begin(const char* name) override {
      if (std::string(name).rfind("fault.", 0) == 0) begins.push_back(name);
    }
    void on_phase_end(const char* name) override {
      if (std::string(name).rfind("fault.", 0) == 0) ++ends;
    }
  };

  sim::Machine m = make_machine(2);
  m.set_fault_plan(sim::FaultPlan::parse(
      "seed=1 drop=1.0 tag=1 | dup=1.0 tag=2 | delay=1.0 tag=3 ticks=1"
      " | trunc=1.0 tag=4"));
  EventCounter counter;
  auto* prev = m.set_observer(&counter);

  m.post(make_message(0, 1, 1, 4), sim::Category::kM2M);
  m.post(make_message(0, 1, 2, 4), sim::Category::kM2M);
  m.post(make_message(0, 1, 3, 4), sim::Category::kM2M);
  m.post(make_message(0, 1, 4, 4), sim::Category::kM2M);

  ASSERT_EQ(counter.begins.size(), 4u);
  EXPECT_EQ(counter.begins[0], "fault.drop");
  EXPECT_EQ(counter.begins[1], "fault.duplicate");
  EXPECT_EQ(counter.begins[2], "fault.delay");
  EXPECT_EQ(counter.begins[3], "fault.truncate");
  EXPECT_EQ(counter.ends, 4);  // every begin is paired

  m.set_observer(prev);
  m.flush_delayed();
  while (m.receive(1).has_value()) {
  }
}

TEST(FaultPlan, ParseErrorsNameTokenAndByteOffset) {
  // Satellite S2: a rejected spec must say *which* token failed and where
  // it sits in the string, so a long PUP_FAULTS value is debuggable.
  auto message_of = [](const char* spec) -> std::string {
    try {
      (void)sim::FaultPlan::parse(spec);
    } catch (const ContractError& e) {
      return e.what();
    }
    return "";
  };

  //          0123456789012345678
  std::string what = message_of("seed=1 drop=0.5 bogus=1");
  EXPECT_NE(what.find("\"bogus=1\""), std::string::npos) << what;
  EXPECT_NE(what.find("at byte 16"), std::string::npos) << what;

  what = message_of("drop=2.0");
  EXPECT_NE(what.find("\"drop=2.0\""), std::string::npos) << what;
  EXPECT_NE(what.find("at byte 0"), std::string::npos) << what;

  // The offset is the token's position in the *full* spec, across rule
  // separators:  "drop=0.5 | ticks=0" -> "ticks=0" starts at byte 11.
  what = message_of("drop=0.5 | ticks=0");
  EXPECT_NE(what.find("\"ticks=0\""), std::string::npos) << what;
  EXPECT_NE(what.find("at byte 11"), std::string::npos) << what;
}

TEST(FaultPlan, ParsesKillRules) {
  auto plan = sim::FaultPlan::parse(
      "seed=3 kill=2 after=5 phase=prs | drop=0.5");
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->rules().size(), 2u);
  const sim::FaultRule& r0 = plan->rules()[0];
  EXPECT_TRUE(r0.is_kill());
  EXPECT_EQ(r0.kill, 2);
  EXPECT_EQ(r0.after, 5);
  EXPECT_EQ(r0.phase, "prs");
  EXPECT_FALSE(plan->rules()[1].is_kill());

  // `after` defaults to 1: the first matching post is the last.
  auto one = sim::FaultPlan::parse("seed=3 kill=0");
  EXPECT_EQ(one->rules()[0].after, 1);

  EXPECT_THROW(sim::FaultPlan::parse("kill=-2"), ContractError);
  EXPECT_THROW(sim::FaultPlan::parse("kill=1 after=0"), ContractError);
  // kill is a one-shot event, not a probability rule; mixing the two in a
  // single rule is ambiguous and rejected.
  EXPECT_THROW(sim::FaultPlan::parse("kill=1 drop=0.5"), ContractError);
  // `after` without `kill` scopes nothing.
  EXPECT_THROW(sim::FaultPlan::parse("after=3 drop=0.5"), ContractError);
}

TEST(FaultInjection, KillStopsSendingButKeepsDelivering) {
  sim::Machine m = make_machine(3);
  // Rank 1 dies once two matching posts have been observed.
  m.set_fault_plan(sim::FaultPlan::parse("seed=1 kill=1 after=2"));

  struct EventCounter final : sim::MachineObserver {
    std::vector<std::string> begins;
    void on_phase_begin(const char* name) override {
      if (std::string(name).rfind("fault.", 0) == 0) {
        begins.emplace_back(name);
      }
    }
  };
  EventCounter counter;
  auto* prev = m.set_observer(&counter);

  m.post(make_message(0, 2, 7, 4), sim::Category::kM2M);  // countdown: 1
  EXPECT_FALSE(m.fault_plan()->is_dead(1));
  m.post(make_message(2, 0, 7, 4), sim::Category::kM2M);  // fires: 1 dies
  EXPECT_TRUE(m.fault_plan()->is_dead(1));
  // The firing post itself is from a live rank and is still delivered.
  EXPECT_TRUE(m.has_message(0, 2, 7));

  // Dead rank's posts are discarded -- never traced, never delivered.
  const std::int64_t traced = m.trace().messages();
  m.post(make_message(1, 0, 8, 4), sim::Category::kM2M);
  EXPECT_FALSE(m.has_message(0, 1, 8));
  EXPECT_EQ(m.trace().messages(), traced);
  EXPECT_EQ(m.fault_plan()->stats().kills, 1);
  EXPECT_EQ(m.fault_plan()->stats().dead_dropped, 1);

  // Messages TO the dead rank are still delivered: the zombie mailbox
  // keeps consuming so surviving senders never stall.
  m.post(make_message(0, 1, 9, 4), sim::Category::kM2M);
  EXPECT_TRUE(m.has_message(1, 0, 9));

  ASSERT_GE(counter.begins.size(), 2u);
  EXPECT_EQ(counter.begins[0], "fault.kill");
  EXPECT_EQ(counter.begins[1], "fault.dead");

  m.set_observer(prev);
  while (m.receive(0).has_value()) {
  }
  while (m.receive(1).has_value()) {
  }
  while (m.receive(2).has_value()) {
  }
}

TEST(FaultInjection, KillIsTransparentToProbabilityRules) {
  // A kill rule ahead of a probability rule must not shadow it or consume
  // RNG draws: the probability schedule is identical with and without the
  // kill rule present (until the kill fires, scoped here to never match).
  auto run = [](const char* spec) {
    sim::Machine m = sim::Machine(2, sim::CostModel{10.0, 0.1, 0.01});
    m.set_fault_plan(sim::FaultPlan::parse(spec));
    std::int64_t delivered = 0;
    for (int i = 0; i < 64; ++i) {
      std::vector<std::int64_t> w(4);
      std::iota(w.begin(), w.end(), i);
      m.post(sim::Message{0, 1, 7,
                          sim::to_payload<std::int64_t>(
                              std::span<const std::int64_t>(w))},
             sim::Category::kM2M);
      if (m.receive(1, 0, 7).has_value()) ++delivered;
    }
    return delivered;
  };

  const auto with_kill =
      run("kill=0 after=1 phase=never-opened | seed=9 drop=0.5");
  const auto without = run("seed=9 drop=0.5");
  EXPECT_EQ(with_kill, without);
}

TEST(FaultInjection, KillFiresEvenWhenListedAfterProbabilityRules) {
  // Regression: countdowns tick in an order-independent pre-pass.  Before
  // that, the first matching probability rule's early-out shadowed every
  // kill rule queued behind it, so a spec like "drop=... | kill=..." (the
  // shape the chaos harness derives) never fired its fail-stop.
  sim::Machine m = make_machine(2);
  m.set_fault_plan(sim::FaultPlan::parse("seed=4 dup=0.5 | kill=1 after=3"));
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(m.fault_plan()->is_dead(1));
    m.post(make_message(0, 1, 7, 4), sim::Category::kM2M);
  }
  EXPECT_TRUE(m.fault_plan()->is_dead(1));
  EXPECT_EQ(m.fault_plan()->stats().kills, 1);
  while (m.receive(1).has_value()) {
  }
}

TEST(FaultInjection, ReviveRestoresSendingAndKeepsRuleSpent) {
  sim::Machine m = make_machine(2);
  m.set_fault_plan(sim::FaultPlan::parse("seed=1 kill=0 after=1"));

  m.post(make_message(0, 1, 7, 4), sim::Category::kM2M);  // fires; 0 dies
  ASSERT_TRUE(m.fault_plan()->is_dead(0));
  m.post(make_message(0, 1, 8, 4), sim::Category::kM2M);  // discarded
  EXPECT_FALSE(m.has_message(1, 0, 8));

  // Failover onto a spare: the rank sends again, but the one-shot rule
  // stays spent -- it must not kill the revived rank a second time.
  m.fault_plan()->revive_all();
  EXPECT_FALSE(m.fault_plan()->is_dead(0));
  m.post(make_message(0, 1, 9, 4), sim::Category::kM2M);
  EXPECT_TRUE(m.has_message(1, 0, 9));
  EXPECT_EQ(m.fault_plan()->stats().kills, 1);  // unchanged

  while (m.receive(1).has_value()) {
  }
}

}  // namespace
}  // namespace pup
