// White-box tests of UNPACK's two-phase redistribution: request/reply
// traffic accounting and the paper's "UNPACK communication may be twice
// PACK's" observation.
#include <gtest/gtest.h>

#include <numeric>

#include "core/api.hpp"

namespace pup {
namespace {

sim::Machine make_machine(int p) {
  return sim::Machine(p, sim::CostModel{10.0, 0.1, 0.01});
}

struct UnpackFixture {
  dist::DistArray<std::int64_t> a;
  dist::DistArray<mask_t> m;
  dist::DistArray<std::int64_t> f;
  dist::DistArray<std::int64_t> v;
  std::int64_t size;
};

UnpackFixture make_setup(int p, dist::index_t n, dist::index_t w, double density) {
  auto d = dist::Distribution::block_cyclic(dist::Shape({n}),
                                            dist::ProcessGrid({p}), w);
  std::vector<std::int64_t> data(static_cast<std::size_t>(n));
  std::iota(data.begin(), data.end(), 0);
  auto gm = random_mask(n, density, 0xd00d);
  const auto count = count_true(gm);
  std::vector<std::int64_t> vhost(static_cast<std::size_t>(count));
  std::iota(vhost.begin(), vhost.end(), 100000);
  UnpackFixture s{dist::DistArray<std::int64_t>::scatter(d, data),
          dist::DistArray<mask_t>::scatter(d, gm),
          dist::DistArray<std::int64_t>::scatter(d, data),
          dist::DistArray<std::int64_t>::scatter(
              dist::Distribution::block1d(count, p), vhost),
          count};
  return s;
}

TEST(UnpackInternals, RequestAndReplyBytesMatchFormula) {
  const int p = 8;
  UnpackFixture s = make_setup(p, 512, 8, 0.5);
  sim::Machine machine = make_machine(p);
  auto result = unpack(machine, s.v, s.m, s.f);
  // Requests: one int64 rank per true element; replies: one int64 value.
  std::int64_t sent = 0, recv = 0, served = 0, packed = 0;
  for (const auto& c : result.counters) {
    sent += c.bytes_sent;
    recv += c.bytes_recv;
    served += c.recv_elems;
    packed += c.packed;
  }
  EXPECT_EQ(packed, s.size);
  EXPECT_EQ(served, s.size);       // every request answered
  EXPECT_EQ(sent, 8 * s.size);     // request stream
  EXPECT_EQ(recv, 8 * s.size);     // value stream
}

TEST(UnpackInternals, TrafficIsRoughlyTwicePack) {
  const int p = 8;
  UnpackFixture s = make_setup(p, 4096, 16, 0.5);
  sim::Machine pm = make_machine(p);
  PackOptions popt;
  popt.scheme = PackScheme::kCompactStorage;
  (void)pack(pm, s.a, s.m, popt);
  const auto pack_bytes = pm.trace().bytes_in(sim::Category::kM2M) +
                          pm.trace().self_bytes();

  sim::Machine um = make_machine(p);
  UnpackOptions uopt;
  uopt.scheme = UnpackScheme::kCompactStorage;
  (void)unpack(um, s.v, s.m, s.f, uopt);
  const auto unpack_bytes = um.trace().bytes_in(sim::Category::kM2M) +
                            um.trace().self_bytes();

  // PACK ships (rank, value) = 16B per element in one phase; UNPACK ships
  // 8B requests + 8B replies = the same bytes but across two phases (twice
  // the start-up rounds).  Volumes match; message counts roughly double.
  EXPECT_EQ(unpack_bytes, pack_bytes);
  EXPECT_GE(um.trace().messages_in(sim::Category::kM2M),
            pm.trace().messages_in(sim::Category::kM2M));
}

TEST(UnpackInternals, SchemesShipIdenticalBytes) {
  const int p = 4;
  UnpackFixture s = make_setup(p, 256, 4, 0.7);
  std::int64_t bytes[2];
  int i = 0;
  for (UnpackScheme scheme :
       {UnpackScheme::kSimpleStorage, UnpackScheme::kCompactStorage}) {
    sim::Machine machine = make_machine(p);
    UnpackOptions opt;
    opt.scheme = scheme;
    auto result = unpack(machine, s.v, s.m, s.f, opt);
    std::int64_t b = 0;
    for (const auto& c : result.counters) b += c.bytes_sent + c.bytes_recv;
    bytes[i++] = b;
  }
  EXPECT_EQ(bytes[0], bytes[1]);
}

TEST(UnpackInternals, AllSelfWhenAligned) {
  // Mask selects exactly the first B elements per processor's block and
  // the vector is block-distributed: every request stays local.
  const int p = 4;
  const dist::index_t n = 64;
  auto d = dist::Distribution::block(dist::Shape({n}), dist::ProcessGrid({p}));
  std::vector<mask_t> gm(static_cast<std::size_t>(n), 1);  // all true
  std::vector<std::int64_t> vhost(static_cast<std::size_t>(n));
  std::iota(vhost.begin(), vhost.end(), 0);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);
  dist::DistArray<std::int64_t> f(d);
  auto v = dist::DistArray<std::int64_t>::scatter(
      dist::Distribution::block1d(n, p), vhost);
  sim::Machine machine = make_machine(p);
  auto result = unpack(machine, v, m, f);
  EXPECT_EQ(machine.trace().messages_in(sim::Category::kM2M), 0);
  EXPECT_EQ(result.result.gather(), vhost);
}

}  // namespace
}  // namespace pup
