// PackScheme::kAuto coverage: the auto-resolved scheme must match the
// analytical selector fed with the *true* mask density (regression for the
// prefix-sampling bug), agree across processors, and produce exactly the
// same packed vector as every explicit scheme.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/api.hpp"

namespace pup {
namespace {

sim::Machine make_machine(int p) {
  return sim::Machine(p, sim::CostModel{10.0, 0.1, 0.01});
}

TEST(PackSchemeAuto, StridedSamplingSeesThroughDensePrefix) {
  // Adversarial half-and-half geometry: N = 64K over P = 4, block-cyclic
  // with W0 = 16, and mask[i] = (i < N/4).  Under this layout the first
  // quarter of the *global* array lands in the first quarter of every
  // rank's *local* storage, so each rank's local mask is 4096 trues
  // followed by 12288 falses.  A sampler that probes only the first 4096
  // local elements estimates density 1.0; the true density is 0.25.  At
  // W0 = 16 the selector picks a compact scheme at density 1.0 but simple
  // storage at 0.25, so prefix sampling flips the decision.
  const int P = 4;
  const dist::index_t n = 65536;
  const dist::index_t local = n / P;
  sim::Machine machine = make_machine(P);
  auto d = dist::Distribution::block_cyclic(dist::Shape({n}),
                                            dist::ProcessGrid({P}), 16);
  std::vector<std::int64_t> data(static_cast<std::size_t>(n));
  std::iota(data.begin(), data.end(), 0);
  std::vector<mask_t> gm(static_cast<std::size_t>(n), 0);
  for (dist::index_t i = 0; i < n / 4; ++i) {
    gm[static_cast<std::size_t>(i)] = 1;
  }
  auto a = dist::DistArray<std::int64_t>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);

  // The geometry is chosen so the two density estimates disagree on the
  // scheme; assert that so the regression cannot silently go vacuous.
  const PackScheme truth = choose_pack_scheme(local, 16, 0.25, P);
  const PackScheme fooled = choose_pack_scheme(local, 16, 1.0, P);
  ASSERT_EQ(truth, PackScheme::kSimpleStorage);
  ASSERT_NE(fooled, PackScheme::kSimpleStorage);

  PackOptions opt;
  opt.scheme = PackScheme::kAuto;
  auto result = pack(machine, a, m, opt);
  EXPECT_EQ(result.scheme, truth);
  EXPECT_EQ(result.vector.gather(), serial_pack<std::int64_t>(data, gm));
}

TEST(PackSchemeAuto, ResolvedSchemeIsConcreteAndStable) {
  // resolve_pack_scheme must return one of the three concrete schemes
  // (never kAuto) and, since its inputs are deterministic, the same one on
  // every call; the per-rank agreement PUP_CHECK inside it enforces that
  // all processors decide identically after the all-reduce.
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({256}),
                                            dist::ProcessGrid({4}), 8);
  auto m = dist::DistArray<mask_t>::scatter(d, random_mask(256, 0.6, 11));
  const PackScheme first =
      detail::resolve_pack_scheme(machine, m, PackScheme::kAuto);
  EXPECT_NE(first, PackScheme::kAuto);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(detail::resolve_pack_scheme(machine, m, PackScheme::kAuto),
              first);
  }
  // Explicit requests pass through untouched.
  EXPECT_EQ(detail::resolve_pack_scheme(machine, m,
                                        PackScheme::kCompactStorage),
            PackScheme::kCompactStorage);
}

TEST(PackSchemeAuto, AutoMatchesEveryExplicitScheme) {
  // Property: whatever kAuto resolves to, the packed vector is identical
  // to all three explicit schemes' results (the schemes differ only in
  // cost, and auto only picks among them).
  struct Case {
    dist::index_t n;
    dist::index_t block;
    double density;
  };
  const std::vector<Case> cases = {
      {64, 1, 0.5},   // cyclic: auto must pick SSS per the paper
      {64, 4, 0.1},   // sparse
      {64, 4, 0.9},   // dense
      {128, 16, 0.5},
      {96, 8, 0.98},
  };
  for (const Case& c : cases) {
    sim::Machine machine = make_machine(4);
    auto d = dist::Distribution::block_cyclic(dist::Shape({c.n}),
                                              dist::ProcessGrid({4}), c.block);
    std::vector<int> data(static_cast<std::size_t>(c.n));
    std::iota(data.begin(), data.end(), 0);
    auto gm = random_mask(c.n, c.density, 0x5eed + c.n);
    auto a = dist::DistArray<int>::scatter(d, data);
    auto m = dist::DistArray<mask_t>::scatter(d, gm);

    PackOptions opt;
    opt.scheme = PackScheme::kAuto;
    auto auto_result = pack(machine, a, m, opt);
    EXPECT_NE(auto_result.scheme, PackScheme::kAuto);
    if (c.block == 1) {
      EXPECT_EQ(auto_result.scheme, PackScheme::kSimpleStorage);
    }
    const auto auto_gathered = auto_result.vector.gather();
    for (PackScheme s : {PackScheme::kSimpleStorage,
                         PackScheme::kCompactStorage,
                         PackScheme::kCompactMessage}) {
      PackOptions explicit_opt;
      explicit_opt.scheme = s;
      auto r = pack(machine, a, m, explicit_opt);
      EXPECT_EQ(r.vector.gather(), auto_gathered)
          << "n=" << c.n << " block=" << c.block << " density=" << c.density;
    }
  }
}

}  // namespace
}  // namespace pup
