// Unit tests for the simulated machine substrate: cost model, topology,
// mailboxes, message envelopes, time accounting, tracing, and the threaded
// execution policy.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/exec_policy.hpp"
#include "sim/machine.hpp"
#include "support/check.hpp"
#include "support/env.hpp"

namespace pup::sim {
namespace {

TEST(CostModel, MessageTimeIsTauPlusMuM) {
  CostModel c{10.0, 0.5, 0.1};
  EXPECT_DOUBLE_EQ(c.message_us(0), 10.0);
  EXPECT_DOUBLE_EQ(c.message_us(100), 10.0 + 50.0);
}

TEST(CostModel, PresetsAreSane) {
  const auto cm5 = CostModel::cm5();
  EXPECT_GT(cm5.tau_us, 0);
  EXPECT_GT(cm5.mu_us_per_byte, 0);
  const auto cal = CostModel::calibrated_cm5();
  EXPECT_GT(cal.tau_us, 0);
  // Calibration scales tau and mu by the same factor.
  EXPECT_NEAR(cal.tau_us / cm5.tau_us, cal.mu_us_per_byte / cm5.mu_us_per_byte,
              1e-9);
}

TEST(Topology, CrossbarIsDistanceIndependent) {
  auto t = Topology::crossbar(8);
  CostModel c{1.0, 0.0, 0.0};
  EXPECT_EQ(t.hops(0, 7), 1);
  EXPECT_EQ(t.hops(3, 3), 0);
  EXPECT_DOUBLE_EQ(t.message_us(c, 0, 7, 100), 1.0);
  EXPECT_DOUBLE_EQ(t.message_us(c, 2, 2, 100), 0.0);
}

TEST(Topology, HypercubeHopsArePopcount) {
  auto t = Topology::hypercube(8);
  EXPECT_EQ(t.hops(0, 7), 3);
  EXPECT_EQ(t.hops(1, 3), 1);
  EXPECT_EQ(t.hops(5, 5), 0);
}

TEST(Topology, HypercubeRequiresPowerOfTwo) {
  EXPECT_THROW(Topology::hypercube(6), pup::ContractError);
}

TEST(Topology, Mesh2DUsesManhattanDistance) {
  auto t = Topology::mesh2d(16);  // 4x4
  EXPECT_EQ(t.hops(0, 15), 6);    // (0,0) -> (3,3)
  EXPECT_EQ(t.hops(0, 1), 1);
  EXPECT_EQ(t.hops(0, 4), 1);
}

TEST(Topology, MeshAddsPerHopLatency) {
  auto t = Topology::mesh2d(16);
  t.set_per_hop_us(2.0);
  CostModel c{10.0, 0.0, 0.0};
  // 0 -> 15: 6 hops, so 5 extra hop charges.
  EXPECT_DOUBLE_EQ(t.message_us(c, 0, 15, 0), 10.0 + 5 * 2.0);
}

TEST(Message, PayloadRoundTrip) {
  std::vector<std::int64_t> vals = {1, -2, 3};
  auto bytes = to_payload<std::int64_t>(vals);
  EXPECT_EQ(bytes.size(), 24u);
  EXPECT_EQ(from_payload<std::int64_t>(bytes), vals);
}

TEST(Message, PayloadSizeMismatchThrows) {
  std::vector<std::byte> bytes(7);
  EXPECT_THROW(from_payload<std::int32_t>(bytes), pup::ContractError);
}

TEST(Mailbox, FifoPerSenderAndTag) {
  Mailbox mb;
  mb.push(Message{0, 1, 5, to_payload<int>(std::vector<int>{1})});
  mb.push(Message{2, 1, 5, to_payload<int>(std::vector<int>{2})});
  mb.push(Message{0, 1, 5, to_payload<int>(std::vector<int>{3})});

  auto a = mb.pop(0, 5);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(from_payload<int>(a->payload)[0], 1);
  auto b = mb.pop(0, 5);
  EXPECT_EQ(from_payload<int>(b->payload)[0], 3);
  auto c = mb.pop();
  EXPECT_EQ(c->src, 2);
  EXPECT_TRUE(mb.empty());
}

TEST(Mailbox, WildcardsAndMisses) {
  Mailbox mb;
  EXPECT_FALSE(mb.pop().has_value());
  mb.push(Message{3, 0, 9, {}});
  EXPECT_FALSE(mb.pop(3, 8).has_value());
  EXPECT_FALSE(mb.pop(2, 9).has_value());
  EXPECT_TRUE(mb.has(3, kAnyTag));
  EXPECT_TRUE(mb.pop(kAnySource, 9).has_value());
}

TEST(Machine, LocalPhaseRunsEveryRankInOrder) {
  // Rank order is a *sequential-policy* guarantee; pin the policy so the
  // test holds even when PUP_THREADS is set in the environment.
  Machine m(4, CostModel{1, 1, 1}, Topology::crossbar(4),
            ExecPolicy::sequential());
  std::vector<int> order;
  m.local_phase([&](int rank) { order.push_back(rank); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  for (int r = 0; r < 4; ++r) {
    EXPECT_GT(m.times(r).local_us(), 0.0);
  }
}

TEST(Machine, PostReceiveAndTrace) {
  Machine m(3, CostModel{1, 1, 1});
  m.post(Message{0, 2, 7, to_payload<int>(std::vector<int>{42})},
         Category::kM2M);
  EXPECT_TRUE(m.has_message(2, 0, 7));
  EXPECT_FALSE(m.has_message(1));
  EXPECT_EQ(m.trace().messages(), 1);
  EXPECT_EQ(m.trace().messages_in(Category::kM2M), 1);
  EXPECT_EQ(m.trace().bytes(), 4);
  EXPECT_EQ(m.trace().sent_bytes(0), 4);
  EXPECT_EQ(m.trace().recv_bytes(2), 4);

  auto msg = m.receive_required(2, 0, 7);
  EXPECT_EQ(from_payload<int>(msg.payload)[0], 42);
  EXPECT_TRUE(m.mailboxes_empty());
}

TEST(Machine, ReceiveRequiredThrowsWhenMissing) {
  Machine m(2, CostModel{1, 1, 1});
  EXPECT_THROW(m.receive_required(0), pup::ContractError);
}

TEST(Machine, ChargeAndMaxAccounting) {
  Machine m(3, CostModel{1, 1, 1});
  m.charge(0, Category::kPrs, 5.0);
  m.charge(1, Category::kPrs, 8.0);
  m.charge(1, Category::kM2M, 2.0);
  EXPECT_DOUBLE_EQ(m.max_us(Category::kPrs), 8.0);
  EXPECT_DOUBLE_EQ(m.max_total_us(), 10.0);
  m.reset_accounting();
  EXPECT_DOUBLE_EQ(m.max_total_us(), 0.0);
  EXPECT_EQ(m.trace().messages(), 0);
}

TEST(Machine, ResetWithPendingMessagesThrows) {
  Machine m(2, CostModel{1, 1, 1});
  m.post(Message{0, 1, 0, {}}, Category::kLocal);
  EXPECT_THROW(m.reset_accounting(), pup::ContractError);
}

TEST(Machine, BadRankThrows) {
  Machine m(2, CostModel{1, 1, 1});
  EXPECT_THROW(m.post(Message{0, 5, 0, {}}, Category::kLocal),
               pup::ContractError);
  EXPECT_THROW(m.receive(-1), pup::ContractError);
  EXPECT_THROW(Machine(0), pup::ContractError);
}

Machine make_threaded(int nprocs, int threads) {
  return Machine(nprocs, CostModel{1, 1, 1}, Topology::crossbar(nprocs),
                 ExecPolicy::threaded(threads));
}

TEST(ExecPolicy, FactoriesAndValidation) {
  EXPECT_FALSE(ExecPolicy::sequential().is_threaded());
  EXPECT_TRUE(ExecPolicy::threaded(4).is_threaded());
  EXPECT_FALSE(ExecPolicy::threaded(1).is_threaded());
  EXPECT_THROW(ExecPolicy::threaded(0), pup::ContractError);
  EXPECT_THROW(ExecPolicy::threaded(-3), pup::ContractError);
}

TEST(ExecPolicy, FromEnvParsesLeniently) {
  // Save and restore PUP_THREADS: the threaded ctest registrations set it
  // for the whole process, and this test must not clobber that.  from_env
  // consults the read-once snapshot (support/env.hpp), so every mutation
  // must be followed by an explicit refresh.
  const char* prev = std::getenv("PUP_THREADS");
  const std::string saved = prev ? prev : "";
  auto set_threads = [](const char* v) {
    setenv("PUP_THREADS", v, 1);
    pup::support::Env::refresh();
  };

  unsetenv("PUP_THREADS");
  pup::support::Env::refresh();
  EXPECT_FALSE(ExecPolicy::from_env().is_threaded());
  set_threads("");
  EXPECT_FALSE(ExecPolicy::from_env().is_threaded());
  set_threads("4");
  EXPECT_EQ(ExecPolicy::from_env().threads, 4);
  set_threads("1");
  EXPECT_FALSE(ExecPolicy::from_env().is_threaded());
  // Lenient fallbacks: junk, negatives, and trailing garbage never throw
  // and never enable threading.
  for (const char* bad : {"abc", "-2", "0", "4x", "1e3"}) {
    set_threads(bad);
    EXPECT_FALSE(ExecPolicy::from_env().is_threaded()) << bad;
  }
  // strtol skips leading whitespace, so a padded value still parses.
  set_threads(" 4");
  EXPECT_EQ(ExecPolicy::from_env().threads, 4);
  // Absurd values are capped, not rejected.
  set_threads("999999");
  EXPECT_LE(ExecPolicy::from_env().threads, 1024);

  if (prev != nullptr) {
    setenv("PUP_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("PUP_THREADS");
  }
  pup::support::Env::refresh();
}

TEST(MachineThreaded, LocalPhaseRunsEveryRankExactlyOnce) {
  Machine m = make_threaded(8, 4);
  std::vector<std::atomic<int>> hits(8);
  m.local_phase([&](int rank) {
    hits[static_cast<std::size_t>(rank)].fetch_add(1);
  });
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(hits[static_cast<std::size_t>(r)].load(), 1);
    EXPECT_GT(m.times(r).local_us(), 0.0);
  }
}

TEST(MachineThreaded, PoolIsReusedAcrossManyPhases) {
  Machine m = make_threaded(4, 4);
  std::vector<std::atomic<long>> sums(4);
  for (int iter = 0; iter < 100; ++iter) {
    m.local_phase([&](int rank) {
      sums[static_cast<std::size_t>(rank)].fetch_add(rank + 1);
    });
  }
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(sums[static_cast<std::size_t>(r)].load(), 100L * (r + 1));
  }
}

TEST(MachineThreaded, LowestRankExceptionWinsDeterministically) {
  Machine m = make_threaded(8, 4);
  // Several ranks throw; the caller must always see rank 2's error no
  // matter how the pool schedules the bodies.
  for (int iter = 0; iter < 20; ++iter) {
    try {
      m.local_phase([&](int rank) {
        if (rank == 2 || rank == 5 || rank == 7) {
          throw std::runtime_error("rank " + std::to_string(rank));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "rank 2");
    }
    // The machine stays usable after a throwing phase.
    m.local_phase([](int) {});
  }
}

TEST(MachineThreaded, MorePoolThreadsThanRanksIsFine) {
  Machine m = make_threaded(2, 16);
  std::vector<std::atomic<int>> hits(2);
  m.local_phase([&](int rank) {
    hits[static_cast<std::size_t>(rank)].fetch_add(1);
  });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

TEST(MachineThreaded, SingleProcessorFallsBackToSequential) {
  // nprocs == 1 never engages the pool regardless of policy.
  Machine m(1, CostModel{1, 1, 1}, Topology::crossbar(1),
            ExecPolicy::threaded(8));
  int hits = 0;
  m.local_phase([&](int) { ++hits; });
  EXPECT_EQ(hits, 1);
}

TEST(MachineThreaded, ChargesFromConcurrentRanksAllLand) {
  Machine m = make_threaded(8, 4);
  m.local_phase([&](int rank) { m.charge(rank, Category::kPrs, 1.0); });
  for (int r = 0; r < 8; ++r) {
    EXPECT_DOUBLE_EQ(m.times(r)[Category::kPrs], 1.0);
  }
}

TEST(TimeBreakdown, Accumulates) {
  TimeBreakdown t;
  t[Category::kLocal] = 1.0;
  t[Category::kPrs] = 2.0;
  TimeBreakdown u;
  u[Category::kM2M] = 3.0;
  t += u;
  EXPECT_DOUBLE_EQ(t.total_us(), 6.0);
}

}  // namespace
}  // namespace pup::sim
