// Tests for the Section 6.4 analytical model and the scheme selector.
#include <gtest/gtest.h>

#include "core/cost_model_analysis.hpp"
#include "support/check.hpp"

namespace pup {
namespace {

TEST(CostModelAnalysis, PredictionsFollowThePaperFormulas) {
  // For L=1024, W=8, density 0.5: C=128, E=Ea=512.
  const auto p = predict_local_cost(1024, 8, 0.5, 16);
  EXPECT_DOUBLE_EQ(p.sss, 1024 + 128 + 6 * 512.0 + 2 * 512.0);
  EXPECT_DOUBLE_EQ(p.css, 2 * 1024 + 2 * 128 + 3 * 512.0 + 2 * 512.0);
  // CMS depends on the segment estimate; it must be cheaper than CSS here
  // (few segments: big block, dense mask).
  EXPECT_LT(p.cms, p.css);
}

TEST(CostModelAnalysis, CssBeatsSssExactlyWhenPaperInequalityHolds) {
  // Paper: CSS < SSS iff L + C <= 3 E_i, i.e. 1 + 1/W <= 3*density.
  // density 0.5, W=2: 1.5 <= 1.5 -> CSS wins (ties go to the compact
  // scheme); W large, density 0.2: 1+eps > 0.6 -> SSS wins.
  const auto tie = predict_local_cost(4096, 2, 0.5, 16);
  EXPECT_LE(tie.css, tie.sss);
  const auto sparse = predict_local_cost(4096, 4096, 0.2, 16);
  EXPECT_GT(sparse.css, sparse.sss);
}

TEST(CostModelAnalysis, Beta1DecreasesWithDensity) {
  const auto b10 = predict_beta1(4096, 0.1);
  const auto b50 = predict_beta1(4096, 0.5);
  const auto b90 = predict_beta1(4096, 0.9);
  EXPECT_FALSE(b10.has_value());  // "infinity" at 10%, as in Table I
  ASSERT_TRUE(b50.has_value());
  ASSERT_TRUE(b90.has_value());
  EXPECT_LE(*b90, *b50);
}

TEST(CostModelAnalysis, Beta1InfiniteBelowOneThird) {
  // 1 + 1/W <= 3*density needs density > 1/3 for any W.
  EXPECT_FALSE(predict_beta1(8192, 0.30).has_value());
  EXPECT_TRUE(predict_beta1(8192, 0.55).has_value());
}

TEST(CostModelAnalysis, Beta2ExistsForDenseMasks) {
  const auto b = predict_beta2(4096, 0.9, 16);
  ASSERT_TRUE(b.has_value());
  // CMS needs segments to amortize: beta_2 should be small for dense masks.
  EXPECT_LE(*b, 64);
}

TEST(CostModelAnalysis, DensityZeroHasNoBeta1Crossover) {
  // With no selected elements, SSS's L + C term always beats CSS's
  // 2L + 2C: no block size crosses over, so the result must be empty
  // rather than a sentinel a caller could mistake for a block size.
  EXPECT_FALSE(predict_beta1(4096, 0.0).has_value());
  EXPECT_FALSE(predict_beta1(2, 0.0).has_value());
  // At density 0 the expected segment counts vanish too.
  EXPECT_DOUBLE_EQ(expected_segments(128, 32, 0.0, 64), 0.0);
  // CMS and CSS tie at density 0 (E = Gs = Gr = 0), and ties go to the
  // scheme listed as "second" in the comparison, so beta_2 is the first
  // power-of-two block.
  const auto b2 = predict_beta2(4096, 0.0, 16);
  ASSERT_TRUE(b2.has_value());
  EXPECT_EQ(*b2, 2);
}

TEST(CostModelAnalysis, SelectorPrefersSssOnCyclic) {
  EXPECT_EQ(choose_pack_scheme(4096, 1, 0.9, 16),
            PackScheme::kSimpleStorage);
}

TEST(CostModelAnalysis, SelectorPrefersSssOnSparseMasks) {
  EXPECT_EQ(choose_pack_scheme(4096, 64, 0.05, 16),
            PackScheme::kSimpleStorage);
}

TEST(CostModelAnalysis, SelectorPrefersCompactOnDenseBlock) {
  const PackScheme s = choose_pack_scheme(4096, 4096, 0.9, 16);
  EXPECT_TRUE(s == PackScheme::kCompactMessage ||
              s == PackScheme::kCompactStorage);
}

TEST(CostModelAnalysis, ExpectedSegmentsBounds) {
  // Never negative, never more than the expected number of selected
  // elements, at most one segment per slice plus boundary splits.
  const double segs = expected_segments(/*slices=*/128, /*w0=*/32,
                                        /*density=*/0.5, /*result_block=*/2048);
  EXPECT_GT(segs, 0.0);
  EXPECT_LE(segs, 128 * 32 * 0.5);
  // Dense mask, huge block: essentially every slice is one segment.
  const double dense = expected_segments(128, 32, 1.0, 1 << 20);
  EXPECT_NEAR(dense, 128.0, 1.0);
}

TEST(CostModelAnalysis, ExpectedSegmentsShrinkWithResultBlock) {
  const double big_block = expected_segments(128, 32, 0.9, 4096);
  const double small_block = expected_segments(128, 32, 0.9, 4);
  EXPECT_LT(big_block, small_block);
}

TEST(CostModelAnalysis, BadArgsThrow) {
  EXPECT_THROW(predict_local_cost(0, 1, 0.5, 16), ContractError);
  EXPECT_THROW(predict_local_cost(16, 32, 0.5, 16), ContractError);
  EXPECT_THROW(expected_segments(4, 2, 1.5, 8), ContractError);
}

}  // namespace
}  // namespace pup
