// Tests for the companion F90 intrinsics: MERGE, SUM/MAXVAL/MINVAL, and
// CSHIFT/EOSHIFT, all verified against serial oracles.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/api.hpp"

namespace pup {
namespace {

sim::Machine make_machine(int p) {
  return sim::Machine(p, sim::CostModel{10.0, 0.1, 0.01});
}

// Serial oracles -----------------------------------------------------------

template <typename T>
std::vector<T> serial_cshift(const std::vector<T>& a, const dist::Shape& s,
                             int dim, dist::index_t shift) {
  std::vector<T> out(a.size());
  std::vector<dist::index_t> idx(static_cast<std::size_t>(s.rank()), 0);
  for (dist::index_t lin = 0; lin < s.size(); ++lin) {
    auto src = s.multi(lin);
    auto& c = src[static_cast<std::size_t>(dim)];
    c = (c + shift) % s.extent(dim);
    if (c < 0) c += s.extent(dim);
    out[static_cast<std::size_t>(lin)] =
        a[static_cast<std::size_t>(s.linear(src))];
  }
  (void)idx;
  return out;
}

template <typename T>
std::vector<T> serial_eoshift(const std::vector<T>& a, const dist::Shape& s,
                              int dim, dist::index_t shift, T boundary) {
  std::vector<T> out(a.size());
  for (dist::index_t lin = 0; lin < s.size(); ++lin) {
    auto src = s.multi(lin);
    auto& c = src[static_cast<std::size_t>(dim)];
    c += shift;
    out[static_cast<std::size_t>(lin)] =
        (c < 0 || c >= s.extent(dim))
            ? boundary
            : a[static_cast<std::size_t>(s.linear(src))];
  }
  return out;
}

// MERGE ---------------------------------------------------------------------

TEST(Merge, SelectsElementwise) {
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({8, 4}),
                                            dist::ProcessGrid({2, 2}), 2);
  std::vector<int> t(32), f(32);
  std::iota(t.begin(), t.end(), 0);
  std::iota(f.begin(), f.end(), 1000);
  auto gm = random_mask(32, 0.5, 4);
  auto ta = dist::DistArray<int>::scatter(d, t);
  auto fa = dist::DistArray<int>::scatter(d, f);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);
  auto out = merge(machine, ta, fa, m).gather();
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(out[i], gm[i] ? t[i] : f[i]);
  }
}

TEST(Merge, IsPurelyLocal) {
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({16}),
                                            dist::ProcessGrid({4}), 2);
  dist::DistArray<int> t(d), f(d);
  dist::DistArray<mask_t> m(d);
  machine.reset_accounting();
  (void)merge(machine, t, f, m);
  EXPECT_EQ(machine.trace().messages(), 0);
}

TEST(Merge, MisalignedThrows) {
  sim::Machine machine = make_machine(2);
  auto d1 = dist::Distribution::block_cyclic(dist::Shape({8}),
                                             dist::ProcessGrid({2}), 2);
  auto d2 = dist::Distribution::block_cyclic(dist::Shape({8}),
                                             dist::ProcessGrid({2}), 4);
  dist::DistArray<int> t(d1), f(d2);
  dist::DistArray<mask_t> m(d1);
  EXPECT_THROW(merge(machine, t, f, m), ContractError);
}

// Reductions ----------------------------------------------------------------

TEST(ArrayReductions, SumMatchesHost) {
  sim::Machine machine = make_machine(8);
  auto d = dist::Distribution::block_cyclic(dist::Shape({16, 8}),
                                            dist::ProcessGrid({4, 2}), 2);
  std::vector<std::int64_t> data(128);
  std::iota(data.begin(), data.end(), -40);
  auto a = dist::DistArray<std::int64_t>::scatter(d, data);
  EXPECT_EQ(sum(machine, a), std::accumulate(data.begin(), data.end(),
                                             std::int64_t{0}));
}

TEST(ArrayReductions, MaskedSum) {
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({32}),
                                            dist::ProcessGrid({4}), 4);
  std::vector<std::int64_t> data(32);
  std::iota(data.begin(), data.end(), 1);
  auto gm = random_mask(32, 0.5, 7);
  auto a = dist::DistArray<std::int64_t>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);
  std::int64_t want = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    if (gm[i]) want += data[i];
  }
  EXPECT_EQ(sum(machine, a, &m), want);
}

TEST(ArrayReductions, MaxvalMinval) {
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({24}),
                                            dist::ProcessGrid({4}), 2);
  std::vector<double> data = {3, -7, 12, 0.5, 9, -2, 8, 1, 4, -1, 6, 2,
                              7, 5,  -3, 11,  0, 10, 13, -5, 2, 2, 2, 2};
  auto a = dist::DistArray<double>::scatter(d, data);
  EXPECT_DOUBLE_EQ(maxval(machine, a),
                   *std::max_element(data.begin(), data.end()));
  EXPECT_DOUBLE_EQ(minval(machine, a),
                   *std::min_element(data.begin(), data.end()));
}

TEST(ArrayReductions, EmptyMaskGivesIdentities) {
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({16}),
                                            dist::ProcessGrid({4}), 2);
  std::vector<int> data(16, 5);
  std::vector<mask_t> none(16, 0);
  auto a = dist::DistArray<int>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, none);
  EXPECT_EQ(sum(machine, a, &m), 0);
  EXPECT_EQ(maxval(machine, a, &m), std::numeric_limits<int>::lowest());
  EXPECT_EQ(minval(machine, a, &m), std::numeric_limits<int>::max());
}

// CSHIFT / EOSHIFT ----------------------------------------------------------

struct ShiftCase {
  std::vector<dist::index_t> extents;
  std::vector<int> procs;
  std::vector<dist::index_t> blocks;
  int dim;
  dist::index_t shift;
};

class ShiftSweep : public ::testing::TestWithParam<ShiftCase> {};

TEST_P(ShiftSweep, CshiftMatchesOracle) {
  const ShiftCase& c = GetParam();
  int p = 1;
  for (int x : c.procs) p *= x;
  sim::Machine machine = make_machine(p);
  auto d = dist::Distribution(dist::Shape(c.extents),
                              dist::ProcessGrid(c.procs), c.blocks);
  std::vector<std::int64_t> data(static_cast<std::size_t>(d.global().size()));
  std::iota(data.begin(), data.end(), 0);
  auto a = dist::DistArray<std::int64_t>::scatter(d, data);
  auto out = cshift(machine, a, c.dim, c.shift);
  EXPECT_EQ(out.gather(),
            serial_cshift(data, d.global(), c.dim, c.shift));
  EXPECT_TRUE(machine.mailboxes_empty());
}

TEST_P(ShiftSweep, EoshiftMatchesOracle) {
  const ShiftCase& c = GetParam();
  int p = 1;
  for (int x : c.procs) p *= x;
  sim::Machine machine = make_machine(p);
  auto d = dist::Distribution(dist::Shape(c.extents),
                              dist::ProcessGrid(c.procs), c.blocks);
  std::vector<std::int64_t> data(static_cast<std::size_t>(d.global().size()));
  std::iota(data.begin(), data.end(), 0);
  auto a = dist::DistArray<std::int64_t>::scatter(d, data);
  auto out = eoshift(machine, a, c.dim, c.shift, std::int64_t{-999});
  EXPECT_EQ(out.gather(), serial_eoshift(data, d.global(), c.dim, c.shift,
                                         std::int64_t{-999}));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShiftSweep,
    ::testing::Values(ShiftCase{{16}, {4}, {2}, 0, 1},
                      ShiftCase{{16}, {4}, {2}, 0, -3},
                      ShiftCase{{16}, {4}, {1}, 0, 5},
                      ShiftCase{{16}, {4}, {4}, 0, 16},   // full wrap
                      ShiftCase{{16}, {4}, {4}, 0, 21},   // > extent
                      ShiftCase{{8, 8}, {2, 2}, {2, 2}, 0, 2},
                      ShiftCase{{8, 8}, {2, 2}, {2, 2}, 1, -1},
                      ShiftCase{{8, 6, 4}, {2, 3, 1}, {2, 1, 2}, 1, 2}));

TEST(Shift, ZeroShiftIsIdentityWithNoTraffic) {
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({16}),
                                            dist::ProcessGrid({4}), 4);
  std::vector<int> data(16);
  std::iota(data.begin(), data.end(), 0);
  auto a = dist::DistArray<int>::scatter(d, data);
  machine.reset_accounting();
  auto out = cshift(machine, a, 0, 0);
  EXPECT_EQ(out.gather(), data);
  EXPECT_EQ(machine.trace().messages(), 0);  // all self-moves
}

TEST(Shift, BadDimensionThrows) {
  sim::Machine machine = make_machine(2);
  auto d = dist::Distribution::block_cyclic(dist::Shape({8}),
                                            dist::ProcessGrid({2}), 2);
  dist::DistArray<int> a(d);
  EXPECT_THROW(cshift(machine, a, 1, 1), ContractError);
  EXPECT_THROW(cshift(machine, a, -1, 1), ContractError);
}

TEST(Shift, CshiftComposesWithPack) {
  // A realistic compiler pattern: shift then pack under a mask.
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({32}),
                                            dist::ProcessGrid({4}), 2);
  std::vector<std::int64_t> data(32);
  std::iota(data.begin(), data.end(), 0);
  auto gm = random_mask(32, 0.5, 3);
  auto a = dist::DistArray<std::int64_t>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);
  auto shifted = cshift(machine, a, 0, 4);
  auto packed = pack(machine, shifted, m);
  EXPECT_EQ(packed.vector.gather(),
            serial_pack<std::int64_t>(
                serial_cshift(data, d.global(), 0, 4), gm));
}

}  // namespace
}  // namespace pup
