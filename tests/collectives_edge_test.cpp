// Edge-case and failure-injection tests for the collectives layer.
#include <gtest/gtest.h>

#include <cstdint>

#include "coll/broadcast.hpp"
#include "coll/prefix_reduction_sum.hpp"
#include "coll/reduce.hpp"
#include "coll/scan.hpp"
#include "sim/machine.hpp"

namespace pup::coll {
namespace {

using Vec = std::vector<std::int64_t>;
using Bufs = std::vector<Vec>;

sim::Machine make_machine(int p) {
  return sim::Machine(p, sim::CostModel{10.0, 0.1, 0.01});
}

TEST(CollectivesEdge, PrsLengthMismatchThrows) {
  sim::Machine m = make_machine(4);
  Bufs bufs = {{1, 2}, {1, 2}, {1}, {1, 2}};
  Bufs total;
  EXPECT_THROW(prefix_reduction_sum(m, Group::world(4),
                                    PrsAlgorithm::kDirect, bufs, total),
               pup::ContractError);
}

TEST(CollectivesEdge, AllreduceLengthMismatchThrows) {
  sim::Machine m = make_machine(3);
  Bufs bufs = {{1}, {1, 2}, {1}};
  EXPECT_THROW(allreduce_sum(m, Group::world(3), bufs), pup::ContractError);
}

TEST(CollectivesEdge, BroadcastBadRootThrows) {
  sim::Machine m = make_machine(3);
  Bufs bufs(3);
  EXPECT_THROW(broadcast(m, Group::world(3), 3, bufs), pup::ContractError);
  EXPECT_THROW(broadcast(m, Group::world(3), -1, bufs), pup::ContractError);
}

TEST(CollectivesEdge, SingleMemberGroupIsANoopNetworkWise) {
  sim::Machine m = make_machine(4);
  Group g({2});
  Bufs bufs(4);
  bufs[2] = {5, 6};
  Bufs total;
  prefix_reduction_sum(m, g, PrsAlgorithm::kSplit, bufs, total);
  EXPECT_EQ(bufs[2], (Vec{0, 0}));
  EXPECT_EQ(total[2], (Vec{5, 6}));
  EXPECT_EQ(m.trace().messages(), 0);
}

TEST(CollectivesEdge, EmptyVectorsAreLegal) {
  sim::Machine m = make_machine(4);
  Bufs bufs(4);  // all empty
  Bufs total;
  prefix_reduction_sum(m, Group::world(4), PrsAlgorithm::kSplit, bufs, total);
  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(bufs[static_cast<std::size_t>(r)].empty());
    EXPECT_TRUE(total[static_cast<std::size_t>(r)].empty());
  }
  EXPECT_TRUE(m.mailboxes_empty());
}

TEST(CollectivesEdge, GenericAllreduceMax) {
  sim::Machine m = make_machine(5);
  Bufs bufs = {{3, -1}, {7, -5}, {2, -9}, {9, -2}, {1, -7}};
  allreduce(m, Group::world(5), bufs,
            [](std::int64_t a, std::int64_t b) { return a > b ? a : b; });
  for (int r = 0; r < 5; ++r) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)], (Vec{9, -1}));
  }
}

TEST(CollectivesEdge, ExscanOnNonContiguousGroup) {
  sim::Machine m = make_machine(6);
  Group g({5, 1, 3});  // arbitrary order defines the prefix direction
  Bufs bufs(6);
  bufs[5] = {10};
  bufs[1] = {20};
  bufs[3] = {30};
  exscan_sum(m, g, bufs);
  EXPECT_EQ(bufs[5], (Vec{0}));
  EXPECT_EQ(bufs[1], (Vec{10}));
  EXPECT_EQ(bufs[3], (Vec{30}));
  // Non-members untouched.
  EXPECT_TRUE(bufs[0].empty());
}

TEST(CollectivesEdge, PrsWithVectorShorterThanGroup) {
  // M < G: split's trailing chunks are empty and must not deadlock.
  sim::Machine m = make_machine(8);
  Bufs bufs(8, Vec{1, 2, 3});
  Bufs total;
  prefix_reduction_sum(m, Group::world(8), PrsAlgorithm::kSplit, bufs, total);
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(r)],
              (Vec{r * 1, r * 2, r * 3}));
    EXPECT_EQ(total[static_cast<std::size_t>(r)], (Vec{8, 16, 24}));
  }
}

TEST(CollectivesEdge, MeshFactorizationIsMostSquare) {
  auto t12 = sim::Topology::mesh2d(12);  // 3 x 4
  EXPECT_EQ(t12.hops(0, 11), (2 + 3));
  auto t9 = sim::Topology::mesh2d(9);  // 3 x 3
  EXPECT_EQ(t9.hops(0, 8), 4);
  auto t7 = sim::Topology::mesh2d(7);  // degenerate 1 x 7
  EXPECT_EQ(t7.hops(0, 6), 6);
}

}  // namespace
}  // namespace pup::coll
