// Unit and property tests for the per-dimension block-cyclic map.
#include <gtest/gtest.h>

#include <tuple>

#include "dist/block_cyclic.hpp"
#include "support/check.hpp"

namespace pup::dist {
namespace {

TEST(BlockCyclicDim, PaperExampleFigure1) {
  // Figure 1: N=16, P=4, W=2 -> L=4, T=2, S=8.
  BlockCyclicDim d(16, 4, 2);
  EXPECT_EQ(d.local_extent(), 4);
  EXPECT_EQ(d.tiles(), 2);
  EXPECT_EQ(d.tile_size(), 8);
  EXPECT_TRUE(d.divisible());

  // Blocks of two: owners along 0..15 are 00 11 22 33 00 11 22 33.
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(1), 0);
  EXPECT_EQ(d.owner(2), 1);
  EXPECT_EQ(d.owner(7), 3);
  EXPECT_EQ(d.owner(8), 0);
  EXPECT_EQ(d.owner(15), 3);

  // Local layout is tile-major: proc 0 owns globals {0,1,8,9} at locals
  // {0,1,2,3}.
  EXPECT_EQ(d.local_index(0), 0);
  EXPECT_EQ(d.local_index(1), 1);
  EXPECT_EQ(d.local_index(8), 2);
  EXPECT_EQ(d.local_index(9), 3);
  EXPECT_EQ(d.global_index(0, 2), 8);
}

TEST(BlockCyclicDim, CyclicIsBlockSizeOne) {
  BlockCyclicDim d(12, 3, 1);
  for (index_t g = 0; g < 12; ++g) {
    EXPECT_EQ(d.owner(g), static_cast<int>(g % 3));
    EXPECT_EQ(d.local_index(g), g / 3);
  }
}

TEST(BlockCyclicDim, BlockIsBlockSizeNOverP) {
  BlockCyclicDim d(12, 3, 4);
  EXPECT_EQ(d.tiles(), 1);
  for (index_t g = 0; g < 12; ++g) {
    EXPECT_EQ(d.owner(g), static_cast<int>(g / 4));
    EXPECT_EQ(d.local_index(g), g % 4);
  }
}

struct RoundTripParam {
  index_t n;
  int p;
  index_t w;
};

class BlockCyclicRoundTrip : public ::testing::TestWithParam<RoundTripParam> {
};

TEST_P(BlockCyclicRoundTrip, GlobalLocalGlobal) {
  const auto [n, p, w] = GetParam();
  BlockCyclicDim d(n, p, w);
  // Every global index maps to (owner, local) and back.
  std::vector<index_t> counts(static_cast<std::size_t>(p), 0);
  for (index_t g = 0; g < n; ++g) {
    const int o = d.owner(g);
    ASSERT_GE(o, 0);
    ASSERT_LT(o, p);
    const index_t l = d.local_index(g);
    EXPECT_EQ(d.global_index(o, l), g);
    ++counts[static_cast<std::size_t>(o)];
  }
  // local_extent_on agrees with the actual ownership counts (ragged-aware).
  for (int proc = 0; proc < p; ++proc) {
    EXPECT_EQ(d.local_extent_on(proc), counts[static_cast<std::size_t>(proc)])
        << "proc " << proc << " n=" << n << " p=" << p << " w=" << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockCyclicRoundTrip,
    ::testing::Values(RoundTripParam{16, 4, 2}, RoundTripParam{16, 4, 1},
                      RoundTripParam{16, 4, 4}, RoundTripParam{17, 4, 2},
                      RoundTripParam{23, 5, 3}, RoundTripParam{100, 7, 4},
                      RoundTripParam{5, 8, 2}, RoundTripParam{1, 1, 1},
                      RoundTripParam{64, 1, 8}, RoundTripParam{63, 8, 8}));

TEST(BlockCyclicDim, LocalOrderPreservesGlobalOrderWithinProc) {
  // Within one processor, increasing local index must mean increasing
  // global index (the ranking algorithm depends on this).
  BlockCyclicDim d(24, 3, 2);
  for (int proc = 0; proc < 3; ++proc) {
    index_t prev = -1;
    for (index_t l = 0; l < d.local_extent_on(proc); ++l) {
      const index_t g = d.global_index(proc, l);
      EXPECT_GT(g, prev);
      prev = g;
    }
  }
}

TEST(BlockCyclicDim, DivisibilityDetection) {
  EXPECT_TRUE(BlockCyclicDim(24, 3, 2).divisible());
  EXPECT_FALSE(BlockCyclicDim(25, 3, 2).divisible());
  EXPECT_FALSE(BlockCyclicDim(24, 3, 5).divisible());
}

TEST(BlockCyclicDim, LocalExtentRequiresDivisible) {
  EXPECT_THROW(BlockCyclicDim(25, 3, 2).local_extent(), ContractError);
}

TEST(BlockCyclicDim, TileOfMatchesDefinition) {
  BlockCyclicDim d(32, 4, 2);  // S = 8
  EXPECT_EQ(d.tile_of(0), 0);
  EXPECT_EQ(d.tile_of(7), 0);
  EXPECT_EQ(d.tile_of(8), 1);
  EXPECT_EQ(d.tile_of(31), 3);
}

TEST(BlockCyclicDim, BadArgsThrow) {
  EXPECT_THROW(BlockCyclicDim(-1, 2, 1), ContractError);
  EXPECT_THROW(BlockCyclicDim(8, 0, 1), ContractError);
  EXPECT_THROW(BlockCyclicDim(8, 2, 0), ContractError);
}

}  // namespace
}  // namespace pup::dist
