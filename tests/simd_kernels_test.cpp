// Property tests for the vectorized local kernels (core/kernels/): every
// vector path must agree bit for bit with the scalar reference across
// densities, lengths covering every remainder mod the widest lane (32
// bytes, AVX2), and element widths -- plus PUP_SIMD dispatch semantics and
// in-process end-to-end digest parity.
#include "core/kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <optional>
#include <vector>

#include "analysis/determinism.hpp"
#include "core/api.hpp"
#include "support/env.hpp"

namespace pup {
namespace {

using kernels::Path;

/// Restores PUP_SIMD resolution when a test body returns or throws.
class ForceGuard {
 public:
  explicit ForceGuard(std::optional<Path> p) {
    kernels::force_path_for_testing(p);
  }
  ~ForceGuard() { kernels::force_path_for_testing(std::nullopt); }
};

std::vector<Path> vector_paths() {
  std::vector<Path> paths = {Path::kGeneric};
  if (kernels::native_available()) paths.push_back(Path::kNative);
  return paths;
}

/// Lengths hitting every remainder mod 32 (one sub-block case and one
/// full-block-plus-tail case each), plus degenerate and large sizes.
std::vector<std::size_t> interesting_lengths() {
  std::vector<std::size_t> lens = {0, 1, 4096, 4099};
  for (std::size_t r = 0; r < 32; ++r) {
    lens.push_back(r);
    lens.push_back(64 + r);
  }
  return lens;
}

const double kDensities[] = {0.0, 0.01, 0.5, 0.99, 1.0};
const std::uint64_t kSeeds[] = {1, 42, 20260808};

TEST(SimdKernels, MaskCountMatchesScalarEverywhere) {
  for (const std::uint64_t seed : kSeeds) {
    for (const double density : kDensities) {
      for (const std::size_t n : interesting_lengths()) {
        const auto mask =
            random_mask(static_cast<dist::index_t>(n), density, seed);
        ForceGuard ref(Path::kScalar);
        const std::int64_t expect = kernels::mask_count(mask.data(), n);
        for (const Path path : vector_paths()) {
          kernels::force_path_for_testing(path);
          EXPECT_EQ(kernels::mask_count(mask.data(), n), expect)
              << kernels::path_name(path) << " n=" << n << " d=" << density;
        }
      }
    }
  }
}

template <typename T>
void check_gather_parity() {
  for (const double density : kDensities) {
    for (const std::size_t n : interesting_lengths()) {
      const auto mask =
          random_mask(static_cast<dist::index_t>(n), density, 7);
      std::vector<T> values(n);
      std::iota(values.begin(), values.end(), T(3));
      std::vector<T> expect(n, T(-1));
      ForceGuard ref(Path::kScalar);
      const std::size_t expect_k = kernels::mask_gather<T>(
          mask.data(), values.data(), n, expect.data());
      for (const Path path : vector_paths()) {
        kernels::force_path_for_testing(path);
        std::vector<T> out(n, T(-2));
        const std::size_t k = kernels::mask_gather<T>(
            mask.data(), values.data(), n, out.data());
        ASSERT_EQ(k, expect_k)
            << kernels::path_name(path) << " n=" << n << " d=" << density;
        for (std::size_t j = 0; j < k; ++j) {
          ASSERT_EQ(out[j], expect[j])
              << kernels::path_name(path) << " n=" << n << " j=" << j;
        }
        // Stop-early: any target in [0, k] collects exactly the first
        // `target` selected elements.
        for (const std::size_t target :
             {std::size_t{0}, k / 2, k}) {
          std::vector<T> first(n, T(-3));
          const std::size_t got = kernels::mask_gather_first_n<T>(
              mask.data(), values.data(), n, target, first.data());
          ASSERT_EQ(got, target) << kernels::path_name(path) << " n=" << n;
          for (std::size_t j = 0; j < got; ++j) {
            ASSERT_EQ(first[j], expect[j]);
          }
        }
      }
    }
  }
}

TEST(SimdKernels, GatherInt32MatchesScalar) {
  check_gather_parity<std::int32_t>();
}
TEST(SimdKernels, GatherInt64MatchesScalar) {
  check_gather_parity<std::int64_t>();
}
TEST(SimdKernels, GatherDoubleMatchesScalar) {
  check_gather_parity<double>();
}

TEST(SimdKernels, SegmentedPrefixMatchesScalar) {
  for (const std::size_t n : interesting_lengths()) {
    for (std::size_t seg : {std::size_t{1}, std::size_t{3}, std::size_t{64},
                            n == 0 ? std::size_t{1} : n}) {
      std::vector<std::int64_t> input(n);
      for (std::size_t i = 0; i < n; ++i) {
        input[i] = static_cast<std::int64_t>((i * 2654435761U) % 1000) - 500;
      }
      std::vector<std::int64_t> expect = input;
      ForceGuard ref(Path::kScalar);
      kernels::segmented_exclusive_prefix(expect.data(), n, seg);
      for (const Path path : vector_paths()) {
        kernels::force_path_for_testing(path);
        std::vector<std::int64_t> got = input;
        kernels::segmented_exclusive_prefix(got.data(), n, seg);
        ASSERT_EQ(got, expect)
            << kernels::path_name(path) << " n=" << n << " seg=" << seg;
      }
    }
  }
}

TEST(SimdKernels, AddInPlaceMatchesScalar) {
  for (const std::size_t n : interesting_lengths()) {
    std::vector<std::int64_t> dst0(n), src(n);
    for (std::size_t i = 0; i < n; ++i) {
      dst0[i] = static_cast<std::int64_t>(i * 31);
      src[i] = static_cast<std::int64_t>(1000 - static_cast<std::int64_t>(i));
    }
    std::vector<std::int64_t> expect = dst0;
    ForceGuard ref(Path::kScalar);
    kernels::add_in_place(expect.data(), src.data(), n);
    for (const Path path : vector_paths()) {
      kernels::force_path_for_testing(path);
      std::vector<std::int64_t> got = dst0;
      kernels::add_in_place(got.data(), src.data(), n);
      ASSERT_EQ(got, expect) << kernels::path_name(path) << " n=" << n;
    }
  }
}

TEST(SimdKernels, RunDecodeMatchesScalar) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{100}, std::size_t{4099}}) {
    std::vector<std::int64_t> payload(n);
    std::iota(payload.begin(), payload.end(), 11);
    const auto* src = reinterpret_cast<const std::byte*>(payload.data());
    std::vector<std::int64_t> expect(n, -1);
    kernels::scalar::run_decode(src, n, sizeof(std::int64_t),
                                reinterpret_cast<std::byte*>(expect.data()));
    std::vector<std::int64_t> got(n, -2);
    kernels::run_decode<std::int64_t>(src, n, got.data());
    EXPECT_EQ(got, expect) << "n=" << n;
    EXPECT_EQ(expect, payload);
  }
}

TEST(SimdKernels, ParseSimdFlag) {
  EXPECT_TRUE(kernels::parse_simd_flag(std::nullopt));
  for (const char* v : {"auto", "on", "1", "simd"}) {
    EXPECT_TRUE(kernels::parse_simd_flag(std::string(v))) << v;
  }
  for (const char* v : {"off", "0", "scalar"}) {
    EXPECT_FALSE(kernels::parse_simd_flag(std::string(v))) << v;
  }
  EXPECT_THROW(kernels::parse_simd_flag(std::string("fast")), ContractError);
  EXPECT_THROW(kernels::parse_simd_flag(std::string("")), ContractError);
}

TEST(SimdKernels, EnvKnobSelectsPath) {
  const std::optional<std::string> saved = support::Env::get().simd;
  support::Env::override_for_testing("PUP_SIMD", std::string("off"));
  kernels::force_path_for_testing(std::nullopt);  // drop cached resolution
  EXPECT_EQ(kernels::active_path(), Path::kScalar);
  EXPECT_FALSE(kernels::vectorized());
  support::Env::override_for_testing("PUP_SIMD", std::string("on"));
  kernels::force_path_for_testing(std::nullopt);
  EXPECT_NE(kernels::active_path(), Path::kScalar);
  EXPECT_TRUE(kernels::vectorized());
  if (kernels::native_available()) {
    EXPECT_EQ(kernels::active_path(), Path::kNative);
  }
  support::Env::override_for_testing("PUP_SIMD", saved);
  kernels::force_path_for_testing(std::nullopt);
}

TEST(SimdKernels, ForceNativeRequiresSupport) {
  if (kernels::native_available()) GTEST_SKIP() << "native path available";
  EXPECT_THROW(kernels::force_path_for_testing(Path::kNative), ContractError);
}

// End-to-end: CMS pack and unpack produce identical digests and values
// under every kernel path (the cross-backend axis is covered by the
// _backend_threads / _simd_off ctest registrations of the full suites).
TEST(SimdKernels, EndToEndPackUnpackParity) {
  const int p = 8;
  const dist::index_t n = 1 << 12;
  struct Run {
    analysis::TraceDigest pack_digest;
    std::vector<std::int64_t> packed;
    std::vector<std::int64_t> unpacked;
  };
  std::vector<Path> paths = {Path::kScalar};
  for (const Path v : vector_paths()) paths.push_back(v);
  std::vector<Run> runs;
  for (const Path path : paths) {
    ForceGuard force(path);
    sim::Machine machine(p, sim::CostModel{10.0, 0.1, 0.01});
    analysis::DigestRecorder recorder(machine);
    auto d = dist::Distribution::block_cyclic(dist::Shape({n}),
                                              dist::ProcessGrid({p}), 64);
    std::vector<std::int64_t> data(static_cast<std::size_t>(n));
    std::iota(data.begin(), data.end(), 0);
    auto a = dist::DistArray<std::int64_t>::scatter(d, data);
    auto m = dist::DistArray<mask_t>::scatter(d, random_mask(n, 0.37, 5));
    PackOptions popt;
    popt.scheme = PackScheme::kCompactMessage;
    auto packed = pack(machine, a, m, popt);
    auto field = dist::DistArray<std::int64_t>::scatter(
        d, std::vector<std::int64_t>(static_cast<std::size_t>(n), -7));
    auto unpacked = unpack(machine, packed.vector, m, field);
    runs.push_back(Run{recorder.digest(), packed.vector.gather(),
                       unpacked.result.gather()});
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_TRUE(runs[i].pack_digest == runs[0].pack_digest)
        << "digest diverged on path " << kernels::path_name(paths[i]);
    EXPECT_EQ(runs[i].packed, runs[0].packed);
    EXPECT_EQ(runs[i].unpacked, runs[0].unpacked);
  }
}

}  // namespace
}  // namespace pup
