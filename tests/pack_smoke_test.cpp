// End-to-end smoke tests: PACK/UNPACK on small arrays against the serial
// Fortran-90 oracle.
#include <gtest/gtest.h>

#include <numeric>

#include "core/api.hpp"

namespace pup {
namespace {

sim::Machine make_machine(int p) {
  // Fixed, host-independent cost model for tests.
  return sim::Machine(p, sim::CostModel{10.0, 0.05, 0.01});
}

TEST(PackSmoke, OneDimensionalBlockCyclic) {
  sim::Machine machine = make_machine(4);
  const dist::index_t n = 16;
  auto d = dist::Distribution::block_cyclic(dist::Shape({n}),
                                            dist::ProcessGrid({4}), 2);
  std::vector<int> data(static_cast<std::size_t>(n));
  std::iota(data.begin(), data.end(), 100);
  // Figure 1's mask: 1100 0110 1011 0101 reading global order.
  std::vector<mask_t> mask = {1, 1, 0, 0, 0, 1, 1, 0,
                              1, 0, 1, 1, 0, 1, 0, 1};

  auto a = dist::DistArray<int>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, mask);

  for (PackScheme scheme :
       {PackScheme::kSimpleStorage, PackScheme::kCompactStorage,
        PackScheme::kCompactMessage}) {
    PackOptions opt;
    opt.scheme = scheme;
    auto result = pack(machine, a, m, opt);
    const auto expected = serial_pack<int>(data, mask);
    EXPECT_EQ(result.size, static_cast<std::int64_t>(expected.size()));
    EXPECT_EQ(result.vector.gather(), expected);
  }
}

TEST(PackSmoke, UnpackRoundTrip) {
  sim::Machine machine = make_machine(4);
  const dist::index_t n = 24;
  auto d = dist::Distribution::block_cyclic(dist::Shape({n}),
                                            dist::ProcessGrid({4}), 3);
  std::vector<int> data(static_cast<std::size_t>(n));
  std::iota(data.begin(), data.end(), 0);
  auto mask = random_mask(n, 0.5, 42);
  std::vector<int> field(static_cast<std::size_t>(n), -1);

  auto a = dist::DistArray<int>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, mask);
  auto f = dist::DistArray<int>::scatter(d, std::span<const int>(field));

  auto packed = pack(machine, a, m);
  for (UnpackScheme scheme :
       {UnpackScheme::kSimpleStorage, UnpackScheme::kCompactStorage}) {
    UnpackOptions opt;
    opt.scheme = scheme;
    auto result = unpack(machine, packed.vector, m, f, opt);
    const auto packed_host = packed.vector.gather();
    const auto expected =
        serial_unpack<int>(packed_host, mask, field);
    EXPECT_EQ(result.result.gather(), expected);
  }
}

TEST(PackSmoke, TwoDimensional) {
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({8, 8}),
                                            dist::ProcessGrid({2, 2}), 2);
  std::vector<double> data(64);
  std::iota(data.begin(), data.end(), 0.0);
  auto mask = random_mask(64, 0.4, 7);

  auto a = dist::DistArray<double>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, mask);

  auto result = pack(machine, a, m);
  EXPECT_EQ(result.vector.gather(), serial_pack<double>(data, mask));
}

}  // namespace
}  // namespace pup
