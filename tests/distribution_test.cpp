// Unit and property tests for whole-array distributions.
#include <gtest/gtest.h>

#include "dist/distribution.hpp"
#include "support/check.hpp"

namespace pup::dist {
namespace {

TEST(Distribution, LocalShapeUnderDivisibility) {
  auto d = Distribution::block_cyclic(Shape({16, 8}), ProcessGrid({4, 2}), 2);
  EXPECT_TRUE(d.divisible());
  for (int r = 0; r < 8; ++r) {
    const Shape local = d.local_shape(r);
    EXPECT_EQ(local.extent(0), 4);  // L_0 = 16/4
    EXPECT_EQ(local.extent(1), 4);  // L_1 = 8/2
  }
}

TEST(Distribution, OwnerAndPlacementConsistent) {
  auto d = Distribution::block_cyclic(Shape({12, 6}), ProcessGrid({3, 2}), 2);
  const Shape& g = d.global();
  std::vector<index_t> idx(2, 0);
  std::vector<index_t> counts(static_cast<std::size_t>(d.nprocs()), 0);
  for (index_t lin = 0; lin < g.size(); ++lin) {
    const auto place = d.place(lin);
    EXPECT_EQ(place.owner, d.owner(idx));
    EXPECT_EQ(place.local, d.local_linear(idx));
    // Inverse mapping.
    auto gidx = d.global_of_local(place.owner, place.local);
    EXPECT_EQ(gidx, idx);
    ++counts[static_cast<std::size_t>(place.owner)];
    if (lin + 1 < g.size()) next_index(g, idx);
  }
  for (int r = 0; r < d.nprocs(); ++r) {
    EXPECT_EQ(counts[static_cast<std::size_t>(r)], d.local_size(r));
  }
}

TEST(Distribution, PlacementIsBijective) {
  auto d = Distribution::block_cyclic(Shape({10, 9}), ProcessGrid({2, 3}), 1);
  std::vector<std::vector<bool>> hit(static_cast<std::size_t>(d.nprocs()));
  for (int r = 0; r < d.nprocs(); ++r) {
    hit[static_cast<std::size_t>(r)].assign(
        static_cast<std::size_t>(d.local_size(r)), false);
  }
  for (index_t lin = 0; lin < d.global().size(); ++lin) {
    const auto place = d.place(lin);
    auto slot = hit[static_cast<std::size_t>(place.owner)]
                   [static_cast<std::size_t>(place.local)];
    EXPECT_FALSE(slot) << "two globals map to one local slot";
    hit[static_cast<std::size_t>(place.owner)]
       [static_cast<std::size_t>(place.local)] = true;
  }
  for (const auto& v : hit) {
    for (bool b : v) EXPECT_TRUE(b);
  }
}

TEST(Distribution, CyclicAndBlockFactories) {
  auto c = Distribution::cyclic(Shape({12}), ProcessGrid({4}));
  EXPECT_EQ(c.dim(0).block(), 1);
  auto b = Distribution::block(Shape({12}), ProcessGrid({4}));
  EXPECT_EQ(b.dim(0).block(), 3);
  auto b2 = Distribution::block(Shape({13}), ProcessGrid({4}));
  EXPECT_EQ(b2.dim(0).block(), 4);  // ceil(13/4)
}

TEST(Distribution, Block1dRaggedLastProcessor) {
  auto d = Distribution::block1d(10, 4);  // B = 3: sizes 3,3,3,1
  EXPECT_EQ(d.local_size(0), 3);
  EXPECT_EQ(d.local_size(1), 3);
  EXPECT_EQ(d.local_size(2), 3);
  EXPECT_EQ(d.local_size(3), 1);
}

TEST(Distribution, Block1dZeroExtent) {
  auto d = Distribution::block1d(0, 4);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(d.local_size(r), 0);
}

TEST(Distribution, RankMismatchThrows) {
  EXPECT_THROW(
      Distribution(Shape({4, 4}), ProcessGrid({2}), {1, 1}),
      ContractError);
  EXPECT_THROW(Distribution(Shape({4}), ProcessGrid({2}), {1, 1}),
               ContractError);
}

TEST(Distribution, DivisibleDetectsViolations) {
  EXPECT_FALSE(
      Distribution::block_cyclic(Shape({10}), ProcessGrid({4}), 2).divisible());
  EXPECT_TRUE(
      Distribution::block_cyclic(Shape({16}), ProcessGrid({4}), 2).divisible());
}

}  // namespace
}  // namespace pup::dist
