// Parameterized property sweep: PACK must reproduce the serial Fortran-90
// oracle for every (shape, grid, block, density, scheme, PRS algorithm,
// schedule) combination, and its counters must satisfy the accounting
// identities of the Section 6.4 model.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>

#include "core/api.hpp"

namespace pup {
namespace {

sim::Machine make_machine(int p) {
  return sim::Machine(p, sim::CostModel{10.0, 0.1, 0.01});
}

struct Case {
  std::vector<dist::index_t> extents;
  std::vector<int> procs;
  std::vector<dist::index_t> blocks;
  double density;
};

std::string scheme_name(PackScheme s) {
  switch (s) {
    case PackScheme::kSimpleStorage:
      return "SSS";
    case PackScheme::kCompactStorage:
      return "CSS";
    case PackScheme::kCompactMessage:
      return "CMS";
    case PackScheme::kAuto:
      return "AUTO";
  }
  return "?";
}

class PackSweep
    : public ::testing::TestWithParam<std::tuple<Case, PackScheme>> {};

TEST_P(PackSweep, MatchesOracleAndAccounting) {
  const auto& [c, scheme] = GetParam();
  int p = 1;
  for (int x : c.procs) p *= x;
  sim::Machine machine = make_machine(p);
  auto d = dist::Distribution(dist::Shape(c.extents),
                              dist::ProcessGrid(c.procs), c.blocks);
  const auto n = d.global().size();
  std::vector<std::int64_t> data(static_cast<std::size_t>(n));
  std::iota(data.begin(), data.end(), 1000);
  auto gm = random_mask(n, c.density, 0x5eed);

  auto a = dist::DistArray<std::int64_t>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);

  PackOptions opt;
  opt.scheme = scheme;
  auto result = pack(machine, a, m, opt);

  const auto expected = serial_pack<std::int64_t>(data, gm);
  EXPECT_EQ(result.size, static_cast<std::int64_t>(expected.size()));
  EXPECT_EQ(result.vector.gather(), expected) << scheme_name(scheme);

  // Accounting identities.
  std::int64_t total_packed = 0, total_recv = 0;
  for (const auto& ctr : result.counters) {
    total_packed += ctr.packed;
    total_recv += ctr.recv_elems;
    EXPECT_EQ(ctr.local_elems, n / p);
    if (scheme == PackScheme::kCompactMessage) {
      // Segments never exceed selected elements.
      EXPECT_LE(ctr.segments_sent, ctr.packed);
    }
  }
  EXPECT_EQ(total_packed, result.size);
  EXPECT_EQ(total_recv, result.size);
  // Total segments sent == total segments received.
  std::int64_t gs = 0, gr = 0;
  for (const auto& ctr : result.counters) {
    gs += ctr.segments_sent;
    gr += ctr.segments_recv;
  }
  EXPECT_EQ(gs, gr);
  EXPECT_TRUE(machine.mailboxes_empty());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackSweep,
    ::testing::Combine(
        ::testing::Values(
            Case{{32}, {4}, {1}, 0.5},    // cyclic
            Case{{32}, {4}, {2}, 0.5},
            Case{{32}, {4}, {8}, 0.5},    // block
            Case{{96}, {3}, {4}, 0.3},    // non-pow2 P
            Case{{64}, {8}, {2}, 0.05},   // sparse
            Case{{64}, {8}, {2}, 0.98},   // dense
            Case{{64}, {1}, {64}, 0.5},   // single processor
            Case{{8, 8}, {2, 2}, {2, 2}, 0.5},
            Case{{16, 8}, {4, 2}, {1, 2}, 0.4},
            Case{{12, 12}, {2, 3}, {3, 2}, 0.7},
            Case{{8, 4, 4}, {2, 2, 2}, {2, 1, 1}, 0.5}),
        ::testing::Values(PackScheme::kSimpleStorage,
                          PackScheme::kCompactStorage,
                          PackScheme::kCompactMessage,
                          PackScheme::kAuto)));

TEST(Pack, SchemesProduceIdenticalVectors) {
  // The three schemes differ only in cost; the result must be bitwise
  // identical, including the result distribution.
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({64}),
                                            dist::ProcessGrid({4}), 4);
  std::vector<double> data(64);
  std::iota(data.begin(), data.end(), 0.0);
  auto gm = random_mask(64, 0.6, 3);
  auto a = dist::DistArray<double>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);

  PackOptions sss, css, cms;
  sss.scheme = PackScheme::kSimpleStorage;
  css.scheme = PackScheme::kCompactStorage;
  cms.scheme = PackScheme::kCompactMessage;
  auto r1 = pack(machine, a, m, sss);
  auto r2 = pack(machine, a, m, css);
  auto r3 = pack(machine, a, m, cms);
  EXPECT_EQ(r1.vector.gather(), r2.vector.gather());
  EXPECT_EQ(r2.vector.gather(), r3.vector.gather());
  for (int rank = 0; rank < 4; ++rank) {
    EXPECT_EQ(r1.vector.local(rank).size(), r2.vector.local(rank).size());
  }
}

TEST(Pack, EmptyMaskYieldsEmptyVector) {
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({16}),
                                            dist::ProcessGrid({4}), 2);
  std::vector<int> data(16, 5);
  std::vector<mask_t> gm(16, 0);
  auto a = dist::DistArray<int>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);
  auto result = pack(machine, a, m);
  EXPECT_EQ(result.size, 0);
  EXPECT_TRUE(result.vector.gather().empty());
}

TEST(Pack, FullMaskIsARedistribution) {
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({16}),
                                            dist::ProcessGrid({4}), 1);
  std::vector<int> data(16);
  std::iota(data.begin(), data.end(), 0);
  std::vector<mask_t> gm(16, 1);
  auto a = dist::DistArray<int>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);
  auto result = pack(machine, a, m);
  EXPECT_EQ(result.size, 16);
  EXPECT_EQ(result.vector.gather(), data);
}

TEST(Pack, VectorArgumentProvidesPadding) {
  // F90 PACK(ARRAY, MASK, VECTOR): trailing elements come from VECTOR.
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({16}),
                                            dist::ProcessGrid({4}), 2);
  std::vector<int> data(16);
  std::iota(data.begin(), data.end(), 0);
  auto gm = random_mask(16, 0.4, 9);
  std::vector<int> pad(24, -7);
  auto a = dist::DistArray<int>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);
  auto v = dist::DistArray<int>::scatter(dist::Distribution::block1d(24, 4),
                                         pad);
  auto result = pack(machine, a, m, v);
  const auto expected = serial_pack<int>(data, gm, pad);
  EXPECT_EQ(result.vector.gather(), expected);
}

TEST(Pack, VectorArgumentTooShortThrows) {
  sim::Machine machine = make_machine(2);
  auto d = dist::Distribution::block_cyclic(dist::Shape({16}),
                                            dist::ProcessGrid({2}), 2);
  std::vector<int> data(16, 1);
  std::vector<mask_t> gm(16, 1);  // 16 selected
  auto a = dist::DistArray<int>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);
  auto v = dist::DistArray<int>(dist::Distribution::block1d(8, 2));
  EXPECT_THROW(pack(machine, a, m, v), ContractError);
}

TEST(Pack, MisalignedMaskThrows) {
  sim::Machine machine = make_machine(2);
  auto da = dist::Distribution::block_cyclic(dist::Shape({16}),
                                             dist::ProcessGrid({2}), 2);
  auto dm = dist::Distribution::block_cyclic(dist::Shape({16}),
                                             dist::ProcessGrid({2}), 4);
  dist::DistArray<int> a(da);
  dist::DistArray<mask_t> m(dm);
  EXPECT_THROW(pack(machine, a, m), ContractError);
}

TEST(Pack, ResultVectorIsBlockDistributed) {
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({32}),
                                            dist::ProcessGrid({4}), 2);
  std::vector<int> data(32, 1);
  std::vector<mask_t> gm(32, 1);
  auto a = dist::DistArray<int>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);
  auto result = pack(machine, a, m);
  // 32 selected over 4 procs: 8 each, block layout.
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(result.vector.local(r).size(), 8u);
  }
  EXPECT_EQ(result.vector.dist().dim(0).block(), 8);
}

TEST(Pack, CyclicResultVectorIncreasesSegments) {
  // Section 6.2: segment counts grow as the result block size shrinks.
  sim::Machine machine = make_machine(4);
  auto d = dist::Distribution::block_cyclic(dist::Shape({64}),
                                            dist::ProcessGrid({4}), 16);
  std::vector<int> data(64, 2);
  std::vector<mask_t> gm(64, 1);
  auto a = dist::DistArray<int>::scatter(d, data);
  auto m = dist::DistArray<mask_t>::scatter(d, gm);

  PackOptions opt;
  opt.scheme = PackScheme::kCompactMessage;
  auto block_v = dist::DistArray<int>(dist::Distribution::block1d(64, 4));
  auto cyc_v = dist::DistArray<int>(dist::Distribution::cyclic(
      dist::Shape({64}), dist::ProcessGrid({4})));
  auto rb = pack(machine, a, m, block_v, opt);
  auto rc = pack(machine, a, m, cyc_v, opt);
  auto seg_total = [](const PackResult<int>& r) {
    std::int64_t s = 0;
    for (const auto& c : r.counters) s += c.segments_sent;
    return s;
  };
  EXPECT_GT(seg_total(rc), seg_total(rb));
  // Both still produce the right data.
  EXPECT_EQ(rb.vector.gather(), rc.vector.gather());
}

}  // namespace
}  // namespace pup
