// Unit tests for DistArray scatter/gather and local storage.
#include <gtest/gtest.h>

#include <numeric>

#include "dist/dist_array.hpp"
#include "support/check.hpp"

namespace pup::dist {
namespace {

TEST(DistArray, ScatterGatherRoundTrip1D) {
  auto d = Distribution::block_cyclic(Shape({24}), ProcessGrid({4}), 3);
  std::vector<int> data(24);
  std::iota(data.begin(), data.end(), 0);
  auto arr = DistArray<int>::scatter(d, data);
  EXPECT_EQ(arr.gather(), data);
}

TEST(DistArray, ScatterGatherRoundTrip3D) {
  auto d = Distribution(Shape({4, 6, 4}), ProcessGrid({2, 3, 1}), {1, 2, 2});
  std::vector<double> data(static_cast<std::size_t>(4 * 6 * 4));
  std::iota(data.begin(), data.end(), 0.5);
  auto arr = DistArray<double>::scatter(d, data);
  EXPECT_EQ(arr.gather(), data);
}

TEST(DistArray, LocalStorageIsTileMajor) {
  // N=8, P=2, W=2: proc 0 owns globals {0,1,4,5} at locals {0,1,2,3}.
  auto d = Distribution::block_cyclic(Shape({8}), ProcessGrid({2}), 2);
  std::vector<int> data = {10, 11, 12, 13, 14, 15, 16, 17};
  auto arr = DistArray<int>::scatter(d, data);
  auto l0 = arr.local(0);
  ASSERT_EQ(l0.size(), 4u);
  EXPECT_EQ(l0[0], 10);
  EXPECT_EQ(l0[1], 11);
  EXPECT_EQ(l0[2], 14);
  EXPECT_EQ(l0[3], 15);
}

TEST(DistArray, AtAccessesByGlobalIndex) {
  auto d = Distribution::block_cyclic(Shape({4, 4}), ProcessGrid({2, 2}), 1);
  std::vector<int> data(16);
  std::iota(data.begin(), data.end(), 0);
  auto arr = DistArray<int>::scatter(d, data);
  const index_t idx[] = {3, 2};  // linear = 3 + 2*4 = 11
  EXPECT_EQ(arr.at(idx), 11);
  arr.at(idx) = 99;
  EXPECT_EQ(arr.gather()[11], 99);
}

TEST(DistArray, ZeroInitialized) {
  auto d = Distribution::block1d(10, 3);
  DistArray<int> arr(d);
  for (int v : arr.gather()) EXPECT_EQ(v, 0);
}

TEST(DistArray, ScatterSizeMismatchThrows) {
  auto d = Distribution::block1d(10, 2);
  std::vector<int> wrong(9);
  EXPECT_THROW(DistArray<int>::scatter(d, wrong), pup::ContractError);
}

TEST(DistArray, RaggedBlockGather) {
  auto d = Distribution::block1d(10, 4);
  std::vector<int> data(10);
  std::iota(data.begin(), data.end(), 100);
  auto arr = DistArray<int>::scatter(d, data);
  EXPECT_EQ(arr.gather(), data);
  EXPECT_EQ(arr.local(3).size(), 1u);
}

}  // namespace
}  // namespace pup::dist
