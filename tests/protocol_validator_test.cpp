// ProtocolValidator tests: clean library runs validate, and deliberately
// seeded protocol bugs -- which the unvalidated machine silently accepts --
// are rejected with the expected rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "analysis/protocol_validator.hpp"
#include "core/api.hpp"
#include "sim/instrumentation.hpp"

namespace pup {
namespace {

using analysis::ProtocolValidator;
using analysis::ValidatorOptions;

sim::Machine make_machine(int p) {
  return sim::Machine(p, sim::CostModel{10.0, 0.05, 0.01});
}

bool has_rule(const ProtocolValidator& v, const char* rule) {
  return std::any_of(v.violations().begin(), v.violations().end(),
                     [&](const analysis::Violation& viol) {
                       return viol.rule == rule;
                     });
}

std::vector<std::byte> payload_of(int words) {
  std::vector<int> values(static_cast<std::size_t>(words), 7);
  return sim::to_payload<int>(std::span<const int>(values));
}

// --- positive: the library's own protocols validate cleanly ---------------

TEST(ProtocolValidator, CleanPackRunValidates) {
  sim::Machine machine = make_machine(4);
  ProtocolValidator validator(machine);

  const dist::index_t n = 64;
  auto d = dist::Distribution::block_cyclic(dist::Shape({n}),
                                            dist::ProcessGrid({4}), 4);
  std::vector<int> data(static_cast<std::size_t>(n));
  std::iota(data.begin(), data.end(), 0);
  auto mask = random_mask(n, 0.5, 3);
  std::vector<int> field(static_cast<std::size_t>(n), -1);

  auto a = dist::DistArray<int>::scatter(d, data);
  auto mk = dist::DistArray<mask_t>::scatter(d, mask);
  auto f = dist::DistArray<int>::scatter(d, std::span<const int>(field));

  for (PackScheme scheme :
       {PackScheme::kSimpleStorage, PackScheme::kCompactStorage,
        PackScheme::kCompactMessage}) {
    PackOptions opt;
    opt.scheme = scheme;
    auto packed = pack(machine, a, mk, opt);
    unpack(machine, packed.vector, mk, f);
  }

  validator.finish();
  EXPECT_TRUE(validator.ok()) << validator.report();
  EXPECT_GT(validator.stats().posts, 0);
  EXPECT_EQ(validator.stats().posts, validator.stats().receives);
  EXPECT_GT(validator.stats().collectives, 0);
  EXPECT_GT(validator.stats().rounds, 0);
  EXPECT_GT(validator.stats().phases, 0);
}

TEST(ProtocolValidator, CleanCollectivesValidate) {
  sim::Machine machine = make_machine(4);
  ProtocolValidator validator(machine);
  const auto g = coll::Group::world(4);

  std::vector<std::vector<int>> bufs(4);
  for (int r = 0; r < 4; ++r) bufs[r] = {r, r + 1};
  coll::broadcast(machine, g, 0, bufs);

  for (int r = 0; r < 4; ++r) bufs[r] = {r, 2 * r};
  coll::exscan_sum(machine, g, bufs);

  for (int r = 0; r < 4; ++r) bufs[r] = {r, 2 * r};
  coll::allreduce_sum(machine, g, bufs);

  for (coll::PrsAlgorithm alg :
       {coll::PrsAlgorithm::kDirect, coll::PrsAlgorithm::kSplit,
        coll::PrsAlgorithm::kControlNetwork}) {
    std::vector<std::vector<long>> prefix(4), total(4);
    for (int r = 0; r < 4; ++r) prefix[r] = {1 + r, 2, 3, 4, 5, 6, 7, 8};
    coll::prefix_reduction_sum(machine, g, alg, prefix, total);
  }

  for (coll::M2MSchedule sched :
       {coll::M2MSchedule::kLinearPermutation, coll::M2MSchedule::kNaive}) {
    std::vector<std::vector<std::vector<int>>> send(4);
    for (int src = 0; src < 4; ++src) {
      send[src].resize(4);
      for (int dst = 0; dst < 4; ++dst) {
        send[src][dst].assign(static_cast<std::size_t>(src + dst + 1), src);
      }
    }
    coll::alltoallv_typed(machine, g, std::move(send), sched);
  }

  validator.finish();
  EXPECT_TRUE(validator.ok()) << validator.report();
}

TEST(ProtocolValidator, ValidatorDoesNotPerturbResults) {
  const dist::index_t n = 48;
  auto d = dist::Distribution::block_cyclic(dist::Shape({n}),
                                            dist::ProcessGrid({4}), 2);
  std::vector<double> data(static_cast<std::size_t>(n));
  std::iota(data.begin(), data.end(), 0.0);
  auto mask = random_mask(n, 0.4, 11);

  auto run = [&](bool validated) {
    sim::Machine machine = make_machine(4);
    std::optional<ProtocolValidator> validator;
    if (validated) validator.emplace(machine);
    auto a = dist::DistArray<double>::scatter(d, data);
    auto mk = dist::DistArray<mask_t>::scatter(d, mask);
    auto packed = pack(machine, a, mk);
    return std::pair(packed.vector.gather(), machine.trace().messages());
  };

  const auto [plain, plain_msgs] = run(false);
  const auto [validated, validated_msgs] = run(true);
  EXPECT_EQ(plain, validated);
  EXPECT_EQ(plain_msgs, validated_msgs);
}

// --- negative: seeded protocol bugs --------------------------------------
//
// The acceptance-criterion test: an orphaned post inside a round that the
// unvalidated machine silently accepts (no throw, message left queued) but
// the validator rejects.

TEST(ProtocolValidator, SeededOrphanedPostSilentlyAcceptedWithoutValidator) {
  sim::Machine machine = make_machine(4);
  auto seeded_bug = [](sim::Machine& m) {
    sim::CollectiveScope scope(m, "buggy", {0x777},
                               sim::RoundDiscipline::kMaxOneExchange);
    sim::RoundScope round(m);
    // Rank 0 posts to rank 1 -- and nobody ever receives it.
    m.post(sim::Message{0, 1, 0x777, payload_of(4)}, sim::Category::kM2M);
    m.charge(0, sim::Category::kM2M, m.message_us(0, 1, 16));
  };

  // Without a validator the machine accepts the broken protocol silently.
  EXPECT_NO_THROW(seeded_bug(machine));
  EXPECT_TRUE(machine.has_message(1, 0, 0x777));

  // The same operation under validation is rejected as an orphaned message.
  sim::Machine checked = make_machine(4);
  {
    ProtocolValidator validator(checked, ValidatorOptions{});
    seeded_bug(checked);
    validator.finish();
    EXPECT_FALSE(validator.ok());
    EXPECT_TRUE(has_rule(validator, "orphaned-message"))
        << validator.report();
  }

  // Drain so the machines tear down cleanly.
  (void)machine.receive(1, 0, 0x777);
  (void)checked.receive(1, 0, 0x777);
}

TEST(ProtocolValidator, WrongRoundExchangeRejected) {
  sim::Machine machine = make_machine(4);
  ProtocolValidator validator(machine);
  {
    sim::CollectiveScope scope(machine, "buggy", {0x777},
                               sim::RoundDiscipline::kMaxOneExchange);
    {
      // Round 1 posts but does not drain...
      sim::RoundScope round(machine);
      machine.post(sim::Message{0, 1, 0x777, payload_of(2)},
                   sim::Category::kM2M);
      machine.charge(0, sim::Category::kM2M, machine.message_us(0, 1, 8));
    }
    {
      // ...and round 2 receives round 1's message.
      sim::RoundScope round(machine);
      (void)machine.receive_required(1, 0, 0x777);
      machine.charge(1, sim::Category::kM2M, machine.message_us(0, 1, 8));
    }
  }
  validator.finish();
  EXPECT_FALSE(validator.ok());
  EXPECT_TRUE(has_rule(validator, "orphaned-message")) << validator.report();
}

TEST(ProtocolValidator, MultipleSendsPerRoundRejected) {
  sim::Machine machine = make_machine(4);
  ProtocolValidator validator(machine);
  {
    sim::CollectiveScope scope(machine, "buggy", {0x777},
                               sim::RoundDiscipline::kMaxOneExchange);
    sim::RoundScope round(machine);
    machine.post(sim::Message{0, 1, 0x777, payload_of(1)},
                 sim::Category::kM2M);
    machine.post(sim::Message{0, 2, 0x777, payload_of(1)},
                 sim::Category::kM2M);
    (void)machine.receive_required(1, 0, 0x777);
    (void)machine.receive_required(2, 0, 0x777);
    machine.charge(0, sim::Category::kM2M, 1e3);
    machine.charge(1, sim::Category::kM2M, 1e3);
    machine.charge(2, sim::Category::kM2M, 1e3);
  }
  validator.finish();
  EXPECT_TRUE(has_rule(validator, "multiple-sends-per-round"))
      << validator.report();
  EXPECT_FALSE(has_rule(validator, "multiple-receives-per-round"));
}

TEST(ProtocolValidator, MultipleReceivesPerRoundRejected) {
  sim::Machine machine = make_machine(4);
  ProtocolValidator validator(machine);
  {
    sim::CollectiveScope scope(machine, "buggy", {0x777},
                               sim::RoundDiscipline::kMaxOneExchange);
    sim::RoundScope round(machine);
    machine.post(sim::Message{0, 2, 0x777, payload_of(1)},
                 sim::Category::kM2M);
    machine.post(sim::Message{1, 2, 0x777, payload_of(1)},
                 sim::Category::kM2M);
    (void)machine.receive_required(2, 0, 0x777);
    (void)machine.receive_required(2, 1, 0x777);
    machine.charge(0, sim::Category::kM2M, 1e3);
    machine.charge(1, sim::Category::kM2M, 1e3);
    machine.charge(2, sim::Category::kM2M, 1e3);
  }
  validator.finish();
  EXPECT_TRUE(has_rule(validator, "multiple-receives-per-round"))
      << validator.report();
}

TEST(ProtocolValidator, TagDisciplineRejected) {
  sim::Machine machine = make_machine(4);
  ProtocolValidator validator(machine);
  {
    sim::CollectiveScope scope(machine, "buggy", {0x111},
                               sim::RoundDiscipline::kUnordered);
    machine.post(sim::Message{0, 1, 0x999, payload_of(1)},
                 sim::Category::kM2M);
    (void)machine.receive_required(1, 0, 0x999);
  }
  validator.finish();
  EXPECT_TRUE(has_rule(validator, "tag-discipline")) << validator.report();
}

TEST(ProtocolValidator, ExchangeOutsideRoundRejected) {
  sim::Machine machine = make_machine(4);
  ProtocolValidator validator(machine);
  {
    sim::CollectiveScope scope(machine, "buggy", {0x777},
                               sim::RoundDiscipline::kMaxOneExchange);
    // Post between rounds of a round-synchronized schedule.
    machine.post(sim::Message{0, 1, 0x777, payload_of(1)},
                 sim::Category::kM2M);
    (void)machine.receive_required(1, 0, 0x777);
  }
  validator.finish();
  EXPECT_TRUE(has_rule(validator, "exchange-outside-round"))
      << validator.report();
}

TEST(ProtocolValidator, UnscopedPostRejected) {
  sim::Machine machine = make_machine(4);
  ProtocolValidator validator(machine);
  machine.post(sim::Message{0, 1, 5, payload_of(1)}, sim::Category::kM2M);
  (void)machine.receive_required(1, 0, 5);
  validator.finish();
  EXPECT_TRUE(has_rule(validator, "unscoped-post")) << validator.report();

  // The same traffic is fine when raw transport use is explicitly allowed.
  sim::Machine permissive = make_machine(4);
  ValidatorOptions opts;
  opts.require_collective_scope = false;
  ProtocolValidator lax(permissive, opts);
  permissive.post(sim::Message{0, 1, 5, payload_of(1)}, sim::Category::kM2M);
  (void)permissive.receive_required(1, 0, 5);
  lax.finish();
  EXPECT_TRUE(lax.ok()) << lax.report();
}

TEST(ProtocolValidator, CrossPhaseLeakageRejected) {
  sim::Machine machine = make_machine(4);
  ValidatorOptions opts;
  opts.require_collective_scope = false;
  ProtocolValidator validator(machine, opts);

  machine.post(sim::Message{0, 1, 5, payload_of(1)}, sim::Category::kM2M);
  // A local phase starts while the message is still in flight.
  machine.local_phase([](int) {});
  (void)machine.receive_required(1, 0, 5);

  validator.finish();
  EXPECT_TRUE(has_rule(validator, "cross-phase-leakage"))
      << validator.report();
}

TEST(ProtocolValidator, UnderchargedExchangeRejected) {
  sim::Machine machine = make_machine(4);
  ProtocolValidator validator(machine);
  {
    sim::CollectiveScope scope(machine, "buggy", {0x777},
                               sim::RoundDiscipline::kMaxOneExchange);
    sim::RoundScope round(machine);
    // 4 KiB move, but nobody charges the modeled tau + mu*m for it.
    machine.post(sim::Message{0, 1, 0x777, payload_of(1024)},
                 sim::Category::kM2M);
    (void)machine.receive_required(1, 0, 0x777);
  }
  validator.finish();
  EXPECT_TRUE(has_rule(validator, "undercharged-exchange"))
      << validator.report();
}

TEST(ProtocolValidator, UnmatchedReceiveRejected) {
  sim::Machine machine = make_machine(4);
  // Posted before validation starts, received under validation.
  machine.post(sim::Message{0, 1, 5, payload_of(1)}, sim::Category::kM2M);
  ProtocolValidator validator(machine);
  (void)machine.receive_required(1, 0, 5);
  validator.finish();
  EXPECT_TRUE(has_rule(validator, "unmatched-receive")) << validator.report();
}

TEST(ProtocolValidator, RoundOutsideCollectiveRejected) {
  sim::Machine machine = make_machine(2);
  ProtocolValidator validator(machine);
  { sim::RoundScope round(machine); }
  validator.finish();
  EXPECT_TRUE(has_rule(validator, "round-outside-collective"))
      << validator.report();
}

TEST(ProtocolValidator, FailFastThrowsContractError) {
  sim::Machine machine = make_machine(4);
  ValidatorOptions opts;
  opts.fail_fast = true;
  ProtocolValidator validator(machine, opts);
  EXPECT_THROW(machine.post(sim::Message{0, 1, 5, payload_of(1)},
                            sim::Category::kM2M),
               ContractError);
  (void)machine.receive(1, 0, 5);
}

TEST(ProtocolValidator, DetachRestoresPreviousObserver) {
  sim::Machine machine = make_machine(2);
  EXPECT_EQ(machine.observer(), nullptr);
  {
    ProtocolValidator outer(machine);
    EXPECT_EQ(machine.observer(), &outer);
    {
      ProtocolValidator inner(machine);
      EXPECT_EQ(machine.observer(), &inner);
    }
    EXPECT_EQ(machine.observer(), &outer);
  }
  EXPECT_EQ(machine.observer(), nullptr);
}

}  // namespace
}  // namespace pup
