// Chaos soak (ctest -L chaos): seeded random workloads x random mixed
// fault schedules x deadlines x cancels, on both backends.  Each seed runs
// the full harness contract (src/service/chaos.hpp): every future resolves
// typed within the wall bound, delivered digests are bit-identical to the
// fault-free reference, and the accounting balances exactly.
//
// The sweep is 16 seeds x {faulted, clean} x {sim, threads} = 64 soak
// combinations, sized to stay inside the ctest timeout under ASan/TSan;
// tools/chaos_soak drives arbitrary ranges for longer campaigns.
#include <gtest/gtest.h>

#include <cstdint>

#include "service/chaos.hpp"

namespace pup {
namespace {

using service::chaos::SoakConfig;
using service::chaos::SoakResult;

constexpr std::uint64_t kSeeds = 16;

/// Sweeps kSeeds soaks and asserts each one's contract plus, across the
/// sweep, that the outcome census is diverse: the harness must actually
/// complete work AND exercise the typed failure paths, or the soak is
/// vacuously green.
void sweep(const std::string& backend, bool faults) {
  SoakResult total;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SoakConfig cfg;
    cfg.seed = seed;
    cfg.backend = backend;
    cfg.faults = faults;
    const SoakResult r = service::chaos::run_soak(cfg);
    ASSERT_TRUE(r.ok) << "seed " << seed << " [" << backend
                      << (faults ? ", faulted" : ", clean")
                      << "]: " << r.error;
    total.completed += r.completed;
    total.failed += r.failed;
    total.shed += r.shed;
    total.cancelled += r.cancelled;
    total.deadline_misses += r.deadline_misses;
    total.watchdog_trips += r.watchdog_trips;
    total.restarts += r.restarts;
  }
  EXPECT_GT(total.completed, 0) << "no soak delivered any result";
  EXPECT_GT(total.cancelled + total.deadline_misses, 0)
      << "no soak exercised a typed deadline/cancel resolution";
  if (faults) {
    EXPECT_GT(total.restarts + total.failed + total.watchdog_trips, 0)
        << "no faulted soak tripped recovery or a typed failure";
  }
}

TEST(ChaosSoak, SimBackendFaulted) { sweep("sim", true); }
TEST(ChaosSoak, SimBackendClean) { sweep("sim", false); }
TEST(ChaosSoak, ThreadsBackendFaulted) { sweep("threads", true); }
TEST(ChaosSoak, ThreadsBackendClean) { sweep("threads", false); }

}  // namespace
}  // namespace pup
