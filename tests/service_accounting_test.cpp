// Property test (the S3 satellite): TenantStats and the global byte budget
// balance *exactly* across randomized mixed admit / reject / shed / cancel
// / complete sequences, including recovery re-execution and
// queued-at-shutdown disposal.  For every seeded scenario:
//
//   admitted == completed + failed + shed + cancelled + deadline_misses
//               + watchdog_trips                      (terminal exclusivity)
//   submitted == admitted + rejected                  (admission totality)
//   bytes_in_flight == 0 at quiescence               (budget unwind)
//   every global bucket == the sum of its per-tenant buckets
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/api.hpp"
#include "service/server.hpp"
#include "sim/fault.hpp"
#include "support/rng.hpp"

namespace pup {
namespace {

using service::Element;
using service::PackRequest;
using service::Response;
using service::Server;
using service::ServerStats;
using service::Status;
using service::TenantStats;

constexpr int kProcs = 4;
constexpr dist::index_t kN = 1024;
const char* const kTenants[2] = {"a", "b"};

dist::Distribution layout() {
  return dist::Distribution::block_cyclic(dist::Shape({kN}),
                                          dist::ProcessGrid({kProcs}), 16);
}

dist::DistArray<Element> make_array(const dist::Distribution& d) {
  std::vector<Element> data(static_cast<std::size_t>(d.global().size()));
  std::iota(data.begin(), data.end(), 1);
  return dist::DistArray<Element>::scatter(d, data);
}

void check_balance(const ServerStats& g, const TenantStats& a,
                   const TenantStats& b, const std::string& label) {
  EXPECT_EQ(g.admitted, g.completed + g.failed + g.shed + g.cancelled +
                            g.deadline_misses + g.watchdog_trips)
      << label;
  EXPECT_EQ(g.submitted, g.admitted + g.rejected) << label;
  EXPECT_EQ(g.bytes_in_flight, 0u) << label;
  for (const TenantStats* t : {&a, &b}) {
    EXPECT_EQ(t->admitted, t->completed + t->failed + t->shed +
                               t->cancelled + t->deadline_misses +
                               t->watchdog_trips)
        << label;
    EXPECT_EQ(t->submitted, t->admitted + t->rejected_quota +
                                t->rejected_bytes + t->rejected_other)
        << label;
  }
  // Only registered tenants submit in this test, so every global bucket is
  // exactly the sum of the per-tenant buckets.
  EXPECT_EQ(g.submitted, a.submitted + b.submitted) << label;
  EXPECT_EQ(g.admitted, a.admitted + b.admitted) << label;
  EXPECT_EQ(g.completed, a.completed + b.completed) << label;
  EXPECT_EQ(g.failed, a.failed + b.failed) << label;
  EXPECT_EQ(g.shed, a.shed + b.shed) << label;
  EXPECT_EQ(g.cancelled, a.cancelled + b.cancelled) << label;
  EXPECT_EQ(g.deadline_misses, a.deadline_misses + b.deadline_misses)
      << label;
  EXPECT_EQ(g.watchdog_trips, a.watchdog_trips + b.watchdog_trips) << label;
  EXPECT_EQ(g.rejected, a.rejected_quota + a.rejected_bytes +
                            a.rejected_other + b.rejected_quota +
                            b.rejected_bytes + b.rejected_other)
      << label;
}

/// One randomized scenario.  `drain_first` selects the quiescence path:
/// drain-then-shutdown (everything executes) vs. shutdown-while-queued
/// (the queue is dropped as shed) -- the balance must hold either way.
void run_scenario(std::uint64_t seed, bool drain_first) {
  Xoshiro256 rng(seed);
  const auto d = layout();
  Server::Options opt;
  opt.nprocs = kProcs;
  opt.cost = sim::CostModel{10.0, 0.1, 0.01};
  opt.start_paused = true;
  opt.window_us = rng.next_below(2) == 0 ? 0.0 : 300.0;
  opt.max_batch = 1 + rng.next_below(4);
  opt.cancellation = true;
  // Small quotas and a tight budget force real admission rejections.
  opt.tenant_inflight_quota = 3 + rng.next_below(8);
  const std::size_t per_request =
      static_cast<std::size_t>(d.global().size()) *
      (sizeof(mask_t) + sizeof(Element));
  opt.byte_budget = per_request * (4 + rng.next_below(8));
  if (rng.next_below(2) == 0) {
    opt.overload_factor =
        6.0 * static_cast<double>(per_request) /
        static_cast<double>(opt.byte_budget);
  }
  const bool faulted = rng.next_below(2) == 0;
  if (faulted) opt.recovery.max_restarts = 3;

  Server server(opt);
  for (const char* t : kTenants) {
    server.register_tenant(t);
    server.register_array(t, "x", make_array(d));
  }
  if (faulted) {
    // A fail-stop kill mid-PRS: recovery rolls back and re-executes, and
    // the re-execution must not double-count any terminal bucket.
    server.machine().set_fault_plan(sim::FaultPlan::parse(
        "seed=" + std::to_string(1 + rng.next_below(100)) +
        " kill=1 after=9 phase=prs"));
  }

  const int requests = 12 + static_cast<int>(rng.next_below(10));
  std::vector<Server::Submission> subs;
  subs.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    PackRequest r;
    r.tenant = kTenants[rng.next_below(2)];
    r.array = "x";
    r.mask = dist::DistArray<mask_t>::scatter(
        d, random_mask(kN, 0.2 + 0.6 * rng.next_double(),
                       seed ^ (31ULL * i)));
    const auto roll = rng.next_below(100);
    if (roll < 20) {
      r.deadline_us = 1.0;  // certain miss while the scheduler is paused
    } else if (roll < 35) {
      r.deadline_us = 60e6;
    }
    subs.push_back(server.submit_tracked(std::move(r)));
  }
  // Cancel a random subset (queued, rejected-already, and repeats: every
  // combination must keep the books exact).
  for (auto& s : subs) {
    if (rng.next_below(100) < 25) {
      server.cancel(s.id);
      if (rng.next_below(4) == 0) server.cancel(s.id);  // double-cancel
    }
  }

  if (drain_first) {
    server.resume();
    server.drain();
    server.shutdown();
  } else {
    // Tear down with the queue still staged: everything queued must
    // resolve Rejected{kShutdown} and be counted as shed.
    server.shutdown();
  }
  for (auto& s : subs) {
    ASSERT_EQ(s.response.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "seed " << seed << ": a future leaked";
    s.response.get();  // typed; outcome itself is free to vary by seed
  }
  check_balance(server.stats(), server.tenant_stats("a"),
                server.tenant_stats("b"),
                "seed " + std::to_string(seed) +
                    (drain_first ? " drained" : " dropped"));
}

TEST(ServiceAccounting, BalancesAcrossRandomMixedSequencesDrained) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    run_scenario(seed, /*drain_first=*/true);
  }
}

TEST(ServiceAccounting, BalancesAcrossRandomMixedSequencesDroppedAtShutdown) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    run_scenario(seed, /*drain_first=*/false);
  }
}

}  // namespace
}  // namespace pup
