// Hand-verified reproduction of the paper's Figure 1 setting: the parallel
// ranking algorithm on a one-dimensional array of 16 elements distributed
// block-cyclic(2) over four processors, with a 10-true mask (the figure's
// Size = 10).  Every PS_f entry is checked against hand-computed global
// prefix counts.
#include <gtest/gtest.h>

#include "core/ranking.hpp"
#include "dist/dist_array.hpp"
#include "sim/machine.hpp"

namespace pup {
namespace {

TEST(Figure1, RankingOnBlockCyclic2Over4Procs) {
  sim::Machine machine(4, sim::CostModel{10, 0.1, 0.01});
  auto d = dist::Distribution::block_cyclic(dist::Shape({16}),
                                            dist::ProcessGrid({4}), 2);
  // Global mask, 10 true values.
  const std::vector<mask_t> gm = {1, 1, 0, 1, 0, 1, 1, 0,
                                  1, 1, 1, 0, 0, 1, 1, 0};
  // Global exclusive prefix counts (trues before each index):
  //   [0,1,2,2,3,3,4,5,5,6,7,8,8,8,9,10]
  auto mask = dist::DistArray<mask_t>::scatter(d, gm);
  auto ranking = rank_mask(machine, mask);

  EXPECT_EQ(ranking.size, 10);
  EXPECT_EQ(ranking.slices, 2);       // T = N/(P*W) = 2 slices per processor
  EXPECT_EQ(ranking.slice_width, 2);  // W_0

  // Slice s of processor p starts at global index s*P*W + p*W; its PS_f
  // entry is the number of trues before that start.
  // P0: starts 0, 8  -> 0, 5        P1: starts 2, 10 -> 2, 7
  // P2: starts 4, 12 -> 3, 8        P3: starts 6, 14 -> 4, 9
  const std::vector<std::vector<std::int64_t>> expected_psf = {
      {0, 5}, {2, 7}, {3, 8}, {4, 9}};
  // Per-slice true counts from the mask blocks:
  // P0: (1,1),(1,1) -> 2,2   P1: (0,1),(1,0) -> 1,1
  // P2: (0,1),(0,1) -> 1,1   P3: (1,0),(1,0) -> 1,1
  const std::vector<std::vector<std::int32_t>> expected_counts = {
      {2, 2}, {1, 1}, {1, 1}, {1, 1}};

  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(ranking.procs[static_cast<std::size_t>(p)].ps_f,
              expected_psf[static_cast<std::size_t>(p)])
        << "proc " << p;
    EXPECT_EQ(ranking.procs[static_cast<std::size_t>(p)].counts,
              expected_counts[static_cast<std::size_t>(p)])
        << "proc " << p;
  }
}

TEST(Figure1, BothPrsAlgorithmsGiveTheSameBaseRanks) {
  sim::Machine machine(4, sim::CostModel{10, 0.1, 0.01});
  auto d = dist::Distribution::block_cyclic(dist::Shape({16}),
                                            dist::ProcessGrid({4}), 2);
  const std::vector<mask_t> gm = {1, 1, 0, 1, 0, 1, 1, 0,
                                  1, 1, 1, 0, 0, 1, 1, 0};
  auto mask = dist::DistArray<mask_t>::scatter(d, gm);
  RankingOptions direct, split;
  direct.prs = coll::PrsAlgorithm::kDirect;
  split.prs = coll::PrsAlgorithm::kSplit;
  auto r1 = rank_mask(machine, mask, direct);
  auto r2 = rank_mask(machine, mask, split);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(r1.procs[static_cast<std::size_t>(p)].ps_f,
              r2.procs[static_cast<std::size_t>(p)].ps_f);
  }
}

}  // namespace
}  // namespace pup
