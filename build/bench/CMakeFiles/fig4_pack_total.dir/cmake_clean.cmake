file(REMOVE_RECURSE
  "CMakeFiles/fig4_pack_total.dir/fig4_pack_total.cpp.o"
  "CMakeFiles/fig4_pack_total.dir/fig4_pack_total.cpp.o.d"
  "fig4_pack_total"
  "fig4_pack_total.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_pack_total.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
