# Empty compiler generated dependencies file for fig4_pack_total.
# This may be replaced when dependencies are built.
