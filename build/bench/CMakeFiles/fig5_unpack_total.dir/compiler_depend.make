# Empty compiler generated dependencies file for fig5_unpack_total.
# This may be replaced when dependencies are built.
