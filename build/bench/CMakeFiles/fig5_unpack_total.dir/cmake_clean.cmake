file(REMOVE_RECURSE
  "CMakeFiles/fig5_unpack_total.dir/fig5_unpack_total.cpp.o"
  "CMakeFiles/fig5_unpack_total.dir/fig5_unpack_total.cpp.o.d"
  "fig5_unpack_total"
  "fig5_unpack_total.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_unpack_total.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
