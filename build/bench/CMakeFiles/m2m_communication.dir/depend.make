# Empty dependencies file for m2m_communication.
# This may be replaced when dependencies are built.
