file(REMOVE_RECURSE
  "CMakeFiles/m2m_communication.dir/m2m_communication.cpp.o"
  "CMakeFiles/m2m_communication.dir/m2m_communication.cpp.o.d"
  "m2m_communication"
  "m2m_communication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2m_communication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
