file(REMOVE_RECURSE
  "CMakeFiles/fig3_local_computation.dir/fig3_local_computation.cpp.o"
  "CMakeFiles/fig3_local_computation.dir/fig3_local_computation.cpp.o.d"
  "fig3_local_computation"
  "fig3_local_computation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_local_computation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
