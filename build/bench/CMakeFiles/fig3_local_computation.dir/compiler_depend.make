# Empty compiler generated dependencies file for fig3_local_computation.
# This may be replaced when dependencies are built.
