file(REMOVE_RECURSE
  "CMakeFiles/table1_beta1.dir/table1_beta1.cpp.o"
  "CMakeFiles/table1_beta1.dir/table1_beta1.cpp.o.d"
  "table1_beta1"
  "table1_beta1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_beta1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
