# Empty dependencies file for prs_direct_vs_split.
# This may be replaced when dependencies are built.
