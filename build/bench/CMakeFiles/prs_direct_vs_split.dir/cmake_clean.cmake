file(REMOVE_RECURSE
  "CMakeFiles/prs_direct_vs_split.dir/prs_direct_vs_split.cpp.o"
  "CMakeFiles/prs_direct_vs_split.dir/prs_direct_vs_split.cpp.o.d"
  "prs_direct_vs_split"
  "prs_direct_vs_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prs_direct_vs_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
