file(REMOVE_RECURSE
  "CMakeFiles/scaling_256.dir/scaling_256.cpp.o"
  "CMakeFiles/scaling_256.dir/scaling_256.cpp.o.d"
  "scaling_256"
  "scaling_256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
