# Empty dependencies file for scaling_256.
# This may be replaced when dependencies are built.
