file(REMOVE_RECURSE
  "CMakeFiles/table2_redistribution.dir/table2_redistribution.cpp.o"
  "CMakeFiles/table2_redistribution.dir/table2_redistribution.cpp.o.d"
  "table2_redistribution"
  "table2_redistribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_redistribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
