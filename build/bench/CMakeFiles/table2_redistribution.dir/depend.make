# Empty dependencies file for table2_redistribution.
# This may be replaced when dependencies are built.
