file(REMOVE_RECURSE
  "libpup.a"
)
