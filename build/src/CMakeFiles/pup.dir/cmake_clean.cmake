file(REMOVE_RECURSE
  "CMakeFiles/pup.dir/coll/alltoallv.cpp.o"
  "CMakeFiles/pup.dir/coll/alltoallv.cpp.o.d"
  "CMakeFiles/pup.dir/core/cost_model_analysis.cpp.o"
  "CMakeFiles/pup.dir/core/cost_model_analysis.cpp.o.d"
  "CMakeFiles/pup.dir/core/mask.cpp.o"
  "CMakeFiles/pup.dir/core/mask.cpp.o.d"
  "CMakeFiles/pup.dir/core/ranking.cpp.o"
  "CMakeFiles/pup.dir/core/ranking.cpp.o.d"
  "CMakeFiles/pup.dir/dist/distribution.cpp.o"
  "CMakeFiles/pup.dir/dist/distribution.cpp.o.d"
  "CMakeFiles/pup.dir/hpf/directives.cpp.o"
  "CMakeFiles/pup.dir/hpf/directives.cpp.o.d"
  "CMakeFiles/pup.dir/sim/cost_model.cpp.o"
  "CMakeFiles/pup.dir/sim/cost_model.cpp.o.d"
  "CMakeFiles/pup.dir/sim/machine.cpp.o"
  "CMakeFiles/pup.dir/sim/machine.cpp.o.d"
  "CMakeFiles/pup.dir/sim/mailbox.cpp.o"
  "CMakeFiles/pup.dir/sim/mailbox.cpp.o.d"
  "CMakeFiles/pup.dir/sim/topology.cpp.o"
  "CMakeFiles/pup.dir/sim/topology.cpp.o.d"
  "CMakeFiles/pup.dir/support/table.cpp.o"
  "CMakeFiles/pup.dir/support/table.cpp.o.d"
  "libpup.a"
  "libpup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
