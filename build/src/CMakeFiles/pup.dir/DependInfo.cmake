
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coll/alltoallv.cpp" "src/CMakeFiles/pup.dir/coll/alltoallv.cpp.o" "gcc" "src/CMakeFiles/pup.dir/coll/alltoallv.cpp.o.d"
  "/root/repo/src/core/cost_model_analysis.cpp" "src/CMakeFiles/pup.dir/core/cost_model_analysis.cpp.o" "gcc" "src/CMakeFiles/pup.dir/core/cost_model_analysis.cpp.o.d"
  "/root/repo/src/core/mask.cpp" "src/CMakeFiles/pup.dir/core/mask.cpp.o" "gcc" "src/CMakeFiles/pup.dir/core/mask.cpp.o.d"
  "/root/repo/src/core/ranking.cpp" "src/CMakeFiles/pup.dir/core/ranking.cpp.o" "gcc" "src/CMakeFiles/pup.dir/core/ranking.cpp.o.d"
  "/root/repo/src/dist/distribution.cpp" "src/CMakeFiles/pup.dir/dist/distribution.cpp.o" "gcc" "src/CMakeFiles/pup.dir/dist/distribution.cpp.o.d"
  "/root/repo/src/hpf/directives.cpp" "src/CMakeFiles/pup.dir/hpf/directives.cpp.o" "gcc" "src/CMakeFiles/pup.dir/hpf/directives.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/pup.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/pup.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/pup.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/pup.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/mailbox.cpp" "src/CMakeFiles/pup.dir/sim/mailbox.cpp.o" "gcc" "src/CMakeFiles/pup.dir/sim/mailbox.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/CMakeFiles/pup.dir/sim/topology.cpp.o" "gcc" "src/CMakeFiles/pup.dir/sim/topology.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/pup.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/pup.dir/support/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
