# Empty compiler generated dependencies file for pup.
# This may be replaced when dependencies are built.
