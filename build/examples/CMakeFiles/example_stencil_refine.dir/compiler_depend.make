# Empty compiler generated dependencies file for example_stencil_refine.
# This may be replaced when dependencies are built.
