file(REMOVE_RECURSE
  "CMakeFiles/example_stencil_refine.dir/stencil_refine.cpp.o"
  "CMakeFiles/example_stencil_refine.dir/stencil_refine.cpp.o.d"
  "example_stencil_refine"
  "example_stencil_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_stencil_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
