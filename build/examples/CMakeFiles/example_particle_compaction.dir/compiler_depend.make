# Empty compiler generated dependencies file for example_particle_compaction.
# This may be replaced when dependencies are built.
