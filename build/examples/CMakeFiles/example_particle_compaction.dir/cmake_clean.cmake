file(REMOVE_RECURSE
  "CMakeFiles/example_particle_compaction.dir/particle_compaction.cpp.o"
  "CMakeFiles/example_particle_compaction.dir/particle_compaction.cpp.o.d"
  "example_particle_compaction"
  "example_particle_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_particle_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
