file(REMOVE_RECURSE
  "CMakeFiles/example_sparse_from_dense.dir/sparse_from_dense.cpp.o"
  "CMakeFiles/example_sparse_from_dense.dir/sparse_from_dense.cpp.o.d"
  "example_sparse_from_dense"
  "example_sparse_from_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sparse_from_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
