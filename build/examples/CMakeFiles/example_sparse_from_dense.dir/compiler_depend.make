# Empty compiler generated dependencies file for example_sparse_from_dense.
# This may be replaced when dependencies are built.
