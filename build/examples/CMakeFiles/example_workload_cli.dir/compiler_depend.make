# Empty compiler generated dependencies file for example_workload_cli.
# This may be replaced when dependencies are built.
