file(REMOVE_RECURSE
  "CMakeFiles/example_workload_cli.dir/workload_cli.cpp.o"
  "CMakeFiles/example_workload_cli.dir/workload_cli.cpp.o.d"
  "example_workload_cli"
  "example_workload_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_workload_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
