# Empty dependencies file for example_image_threshold.
# This may be replaced when dependencies are built.
