file(REMOVE_RECURSE
  "CMakeFiles/example_image_threshold.dir/image_threshold.cpp.o"
  "CMakeFiles/example_image_threshold.dir/image_threshold.cpp.o.d"
  "example_image_threshold"
  "example_image_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_image_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
