file(REMOVE_RECURSE
  "CMakeFiles/collectives_edge_test.dir/collectives_edge_test.cpp.o"
  "CMakeFiles/collectives_edge_test.dir/collectives_edge_test.cpp.o.d"
  "collectives_edge_test"
  "collectives_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collectives_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
