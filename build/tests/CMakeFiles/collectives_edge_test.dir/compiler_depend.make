# Empty compiler generated dependencies file for collectives_edge_test.
# This may be replaced when dependencies are built.
