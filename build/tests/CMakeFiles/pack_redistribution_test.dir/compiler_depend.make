# Empty compiler generated dependencies file for pack_redistribution_test.
# This may be replaced when dependencies are built.
