file(REMOVE_RECURSE
  "CMakeFiles/pack_redistribution_test.dir/pack_redistribution_test.cpp.o"
  "CMakeFiles/pack_redistribution_test.dir/pack_redistribution_test.cpp.o.d"
  "pack_redistribution_test"
  "pack_redistribution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pack_redistribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
