# Empty dependencies file for ragged_1d_test.
# This may be replaced when dependencies are built.
