file(REMOVE_RECURSE
  "CMakeFiles/ragged_1d_test.dir/ragged_1d_test.cpp.o"
  "CMakeFiles/ragged_1d_test.dir/ragged_1d_test.cpp.o.d"
  "ragged_1d_test"
  "ragged_1d_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ragged_1d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
