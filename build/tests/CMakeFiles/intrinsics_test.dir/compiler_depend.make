# Empty compiler generated dependencies file for intrinsics_test.
# This may be replaced when dependencies are built.
