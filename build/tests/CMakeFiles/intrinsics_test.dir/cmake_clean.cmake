file(REMOVE_RECURSE
  "CMakeFiles/intrinsics_test.dir/intrinsics_test.cpp.o"
  "CMakeFiles/intrinsics_test.dir/intrinsics_test.cpp.o.d"
  "intrinsics_test"
  "intrinsics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intrinsics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
