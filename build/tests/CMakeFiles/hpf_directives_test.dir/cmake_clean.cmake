file(REMOVE_RECURSE
  "CMakeFiles/hpf_directives_test.dir/hpf_directives_test.cpp.o"
  "CMakeFiles/hpf_directives_test.dir/hpf_directives_test.cpp.o.d"
  "hpf_directives_test"
  "hpf_directives_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpf_directives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
