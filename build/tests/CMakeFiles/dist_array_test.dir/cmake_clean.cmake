file(REMOVE_RECURSE
  "CMakeFiles/dist_array_test.dir/dist_array_test.cpp.o"
  "CMakeFiles/dist_array_test.dir/dist_array_test.cpp.o.d"
  "dist_array_test"
  "dist_array_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
