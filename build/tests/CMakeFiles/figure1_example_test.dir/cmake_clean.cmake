file(REMOVE_RECURSE
  "CMakeFiles/figure1_example_test.dir/figure1_example_test.cpp.o"
  "CMakeFiles/figure1_example_test.dir/figure1_example_test.cpp.o.d"
  "figure1_example_test"
  "figure1_example_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure1_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
