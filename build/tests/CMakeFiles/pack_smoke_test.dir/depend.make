# Empty dependencies file for pack_smoke_test.
# This may be replaced when dependencies are built.
