file(REMOVE_RECURSE
  "CMakeFiles/pack_smoke_test.dir/pack_smoke_test.cpp.o"
  "CMakeFiles/pack_smoke_test.dir/pack_smoke_test.cpp.o.d"
  "pack_smoke_test"
  "pack_smoke_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pack_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
