file(REMOVE_RECURSE
  "CMakeFiles/pack_internals_test.dir/pack_internals_test.cpp.o"
  "CMakeFiles/pack_internals_test.dir/pack_internals_test.cpp.o.d"
  "pack_internals_test"
  "pack_internals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pack_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
