# Empty compiler generated dependencies file for pack_internals_test.
# This may be replaced when dependencies are built.
