file(REMOVE_RECURSE
  "CMakeFiles/mask_test.dir/mask_test.cpp.o"
  "CMakeFiles/mask_test.dir/mask_test.cpp.o.d"
  "mask_test"
  "mask_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mask_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
