# Empty dependencies file for placement_map_test.
# This may be replaced when dependencies are built.
