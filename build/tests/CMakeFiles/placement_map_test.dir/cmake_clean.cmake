file(REMOVE_RECURSE
  "CMakeFiles/placement_map_test.dir/placement_map_test.cpp.o"
  "CMakeFiles/placement_map_test.dir/placement_map_test.cpp.o.d"
  "placement_map_test"
  "placement_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
