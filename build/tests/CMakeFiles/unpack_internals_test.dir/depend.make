# Empty dependencies file for unpack_internals_test.
# This may be replaced when dependencies are built.
