file(REMOVE_RECURSE
  "CMakeFiles/unpack_internals_test.dir/unpack_internals_test.cpp.o"
  "CMakeFiles/unpack_internals_test.dir/unpack_internals_test.cpp.o.d"
  "unpack_internals_test"
  "unpack_internals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unpack_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
