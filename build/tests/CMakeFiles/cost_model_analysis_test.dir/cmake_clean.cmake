file(REMOVE_RECURSE
  "CMakeFiles/cost_model_analysis_test.dir/cost_model_analysis_test.cpp.o"
  "CMakeFiles/cost_model_analysis_test.dir/cost_model_analysis_test.cpp.o.d"
  "cost_model_analysis_test"
  "cost_model_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_model_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
