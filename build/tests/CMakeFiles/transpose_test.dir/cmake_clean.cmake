file(REMOVE_RECURSE
  "CMakeFiles/transpose_test.dir/transpose_test.cpp.o"
  "CMakeFiles/transpose_test.dir/transpose_test.cpp.o.d"
  "transpose_test"
  "transpose_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transpose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
