file(REMOVE_RECURSE
  "CMakeFiles/alltoallv_test.dir/alltoallv_test.cpp.o"
  "CMakeFiles/alltoallv_test.dir/alltoallv_test.cpp.o.d"
  "alltoallv_test"
  "alltoallv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alltoallv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
