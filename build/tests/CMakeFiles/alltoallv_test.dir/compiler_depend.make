# Empty compiler generated dependencies file for alltoallv_test.
# This may be replaced when dependencies are built.
