# Empty dependencies file for process_grid_test.
# This may be replaced when dependencies are built.
