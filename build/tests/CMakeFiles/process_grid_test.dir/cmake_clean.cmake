file(REMOVE_RECURSE
  "CMakeFiles/process_grid_test.dir/process_grid_test.cpp.o"
  "CMakeFiles/process_grid_test.dir/process_grid_test.cpp.o.d"
  "process_grid_test"
  "process_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
